// One DRAM channel: a set of ranks x banks sharing a 64(+8)-bit data bus.
//
// Scheduling approximates FR-FCFS with read priority, as seen by a
// closed-form model: requests are presented in arrival order; each is
// scheduled at the earliest cycle its bank and the shared bus allow, and
// row hits naturally complete sooner than row misses. Writes are posted:
// they drain through a low-priority write queue and do not delay reads
// unless the queue backs up past its capacity (standard memory-controller
// read-priority behaviour). The x72 ECC lane means a block's ECC/MAC bits
// ride the same burst — no separate transaction (paper §3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "dram/bank.h"
#include "dram/dram_types.h"

namespace secmem {

class DramChannel {
 public:
  DramChannel(const DramConfig& config, unsigned index, StatRegistry& stats);

  struct Completion {
    std::uint64_t done;  ///< cycle the data burst completes
    bool row_hit;
  };

  /// Schedule one 64-byte block access at cycle `now`.
  Completion access(std::uint64_t now, unsigned rank, unsigned bank,
                    std::uint64_t row, bool is_write);

  std::uint64_t bus_busy_until() const noexcept { return bus_free_; }

 private:
  /// Write-queue depth (in bursts) before writes start delaying reads.
  static constexpr std::uint64_t kWriteQueueBursts = 32;

  /// Push `t` past any all-bank refresh window it falls into.
  std::uint64_t after_refresh(std::uint64_t t) const noexcept;

  std::vector<DramBank> banks_;  // rank-major: banks_[rank*banks + bank]
  unsigned banks_per_rank_;
  bool refresh_enabled_;
  std::uint32_t tREFI_;
  std::uint32_t tRFC_;
  std::uint64_t bus_free_ = 0;        ///< read-priority bus horizon
  std::uint64_t write_bus_free_ = 0;  ///< posted-write drain horizon
  std::uint32_t burst_cycles_;
  // Cached registry counters ("dram.chN.*"): the per-access string
  // concatenation + map lookup this used to do dwarfed the scheduling
  // arithmetic itself. References stay valid for the registry's lifetime.
  StatCounter& writes_;
  StatCounter& reads_;
  StatCounter& row_hits_;
  StatCounter& row_misses_;
  StatCounter& refresh_delays_;
};

}  // namespace secmem
