#include "dram/channel.h"

#include <algorithm>

namespace secmem {

DramChannel::DramChannel(const DramConfig& config, unsigned index,
                         StatRegistry& stats)
    : banks_per_rank_(config.org.banks_per_rank),
      refresh_enabled_(config.refresh_enabled),
      tREFI_(config.timing.tREFI),
      tRFC_(config.timing.tRFC),
      burst_cycles_(config.timing.tBurst),
      writes_(stats.counter("dram.ch" + std::to_string(index) + ".writes")),
      reads_(stats.counter("dram.ch" + std::to_string(index) + ".reads")),
      row_hits_(
          stats.counter("dram.ch" + std::to_string(index) + ".row_hits")),
      row_misses_(
          stats.counter("dram.ch" + std::to_string(index) + ".row_misses")),
      refresh_delays_(stats.counter("dram.ch" + std::to_string(index) +
                                    ".refresh_delays")) {
  const unsigned total =
      config.org.ranks_per_channel * config.org.banks_per_rank;
  banks_.reserve(total);
  for (unsigned i = 0; i < total; ++i)
    banks_.emplace_back(config.timing, config.open_page);
}

std::uint64_t DramChannel::after_refresh(std::uint64_t t) const noexcept {
  if (!refresh_enabled_ || tREFI_ == 0) return t;
  // All-bank refresh occupies [k*tREFI, k*tREFI + tRFC) for every k >= 1.
  const std::uint64_t k = t / tREFI_;
  if (k == 0) return t;
  const std::uint64_t window_start = k * tREFI_;
  if (t < window_start + tRFC_) return window_start + tRFC_;
  return t;
}

DramChannel::Completion DramChannel::access(std::uint64_t now, unsigned rank,
                                            unsigned bank, std::uint64_t row,
                                            bool is_write) {
  DramBank& b = banks_.at(rank * banks_per_rank_ + bank);

  if (is_write) {
    // Posted write: drains through the low-priority write queue without
    // disturbing the banks' read-visible state (FR-FCFS would reorder
    // reads around it anyway); its bandwidth cost accrues on the write
    // horizon and surfaces to reads only as queue-full backpressure.
    const std::uint64_t done =
        std::max(now, write_bus_free_) + burst_cycles_;
    write_bus_free_ = done;
    writes_.inc();
    return {done, true};
  }

  // Read: priority bus, but a full write queue forces reads to wait while
  // it drains below capacity (finite-buffer backpressure), and refresh
  // windows block the whole channel.
  std::uint64_t earliest = after_refresh(now);
  if (earliest != now) refresh_delays_.inc();
  if (write_bus_free_ > earliest + kWriteQueueBursts * burst_cycles_)
    earliest = write_bus_free_ - kWriteQueueBursts * burst_cycles_;

  const auto result = b.access(earliest, row, false, bus_free_);
  bus_free_ = result.data_done;
  // The burst also occupies the physical bus from the writes' viewpoint.
  write_bus_free_ = std::max(write_bus_free_, result.data_done);

  reads_.inc();
  (result.row_hit ? row_hits_ : row_misses_).inc();
  return {result.data_done, result.row_hit};
}

}  // namespace secmem
