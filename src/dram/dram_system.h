// Multi-channel DRAM system front end.
//
// The memory controller used by the simulator: maps physical addresses to
// (channel, rank, bank, row), schedules block accesses against the bank
// and bus state, and reports completion cycles. With `ecc_lane` enabled
// (x72 DIMMs), a block's 8 ECC/MAC bytes arrive in the same burst as the
// data — `access` covers both; with it disabled, callers needing metadata
// must issue explicit extra accesses.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "dram/channel.h"
#include "dram/dram_types.h"

namespace secmem {

class DramSystem {
 public:
  DramSystem(const DramConfig& config, StatRegistry& stats);

  /// Schedule a 64-byte block access at cycle `now`; returns the cycle the
  /// data is available (read) or accepted (write).
  std::uint64_t access(std::uint64_t now, std::uint64_t addr, bool is_write);

  /// Latency of an unloaded row-miss read — useful as a baseline figure.
  std::uint64_t idle_read_latency() const noexcept;

  const DramConfig& config() const noexcept { return config_; }

 private:
  DramConfig config_;
  std::vector<DramChannel> channels_;
  StatRegistry& stats_;
};

}  // namespace secmem
