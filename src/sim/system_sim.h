// Full-system simulator: 4 workload-driven cores, the 3-level cache
// hierarchy, the memory-encryption engine, and multi-channel DDR3 DRAM —
// the paper's Table 1 system.
//
// Protection configurations swap in/out the encryption engine and its
// counter scheme, reproducing the Figure 8 comparison:
//   kNone         — plain DRAM (normalization baseline)
//   kEncrypted    — authenticated encryption with the configured
//                   MacPlacement and CounterSchemeKind (BMT baseline =
//                   kSeparate + kMonolithic56; the paper's proposal =
//                   kEccLane + kDelta)
//
// Observer schemes can be attached to watch the L3 writeback stream
// without affecting timing — this lets the Table 2 bench measure several
// counter representations in a single simulation pass.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cache/hierarchy.h"
#include "common/stats.h"
#include "counters/counter_scheme.h"
#include "dram/dram_system.h"
#include "engine/encryption_engine.h"
#include "engine/layout.h"
#include "sim/core_model.h"
#include "sim/workload.h"

namespace secmem {

enum class Protection : std::uint8_t { kNone, kEncrypted };

struct SystemConfig {
  unsigned cores = 4;
  double base_ipc = 2.0;  ///< peak retire rate per core
  unsigned mlp = 8;       ///< outstanding misses a core can overlap
  HierarchyConfig hierarchy{};
  DramConfig dram{};
  Protection protection = Protection::kEncrypted;
  EngineConfig engine{};
  CounterSchemeKind scheme = CounterSchemeKind::kDelta;
  std::uint64_t protected_bytes = 512ULL * 1024 * 1024;  ///< paper Table 1
  std::uint64_t onchip_bytes = 3 * 1024;
  std::uint64_t seed = 42;
  /// References per core excluded from the reported IPC (cache and
  /// metadata warm-up).
  std::uint64_t warmup_refs = 0;
};

struct SimResult {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double ipc = 0;
  std::uint64_t reencryptions = 0;  ///< primary scheme's re-encrypt events
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
};

class SystemSimulator {
 public:
  SystemSimulator(const SystemConfig& config, const WorkloadProfile& profile);

  /// Attach a scheme that observes every L3 writeback (timing-neutral).
  void add_observer(CounterScheme* observer) {
    observers_.push_back(observer);
  }

  /// Run `refs_per_core` memory references on each core from the
  /// configured workload profile; returns overall timing and event counts.
  SimResult run(std::uint64_t refs_per_core);

  /// Run pre-recorded per-core traces (see sim/trace.h) to exhaustion.
  /// `traces` must have at most config.cores entries; shorter cores
  /// simply finish earlier. config.warmup_refs applies per core.
  SimResult run_trace(const std::vector<std::vector<MemRef>>& traces);

  StatRegistry& stats() noexcept { return stats_; }
  const StatRegistry& stats() const noexcept { return stats_; }

  const CounterScheme* scheme() const noexcept { return scheme_.get(); }

 private:
  // Forward a data-region writeback into the engine/DRAM and observers.
  void handle_writeback(double now, std::uint64_t addr);

  /// Shared driver: `next(core)` supplies core-local reference streams,
  /// `remaining[core]` their lengths; the first warmup_refs per core are
  /// excluded from the reported IPC.
  SimResult run_with(const std::function<MemRef(unsigned)>& next,
                     std::vector<std::uint64_t> remaining,
                     std::uint64_t warmup_refs);

  SystemConfig config_;
  WorkloadProfile profile_;
  StatRegistry stats_;
  DramSystem dram_;
  CacheHierarchy hierarchy_;
  std::unique_ptr<CounterScheme> scheme_;
  std::unique_ptr<SecureRegionLayout> layout_;
  std::unique_ptr<EncryptionEngine> engine_;
  std::vector<CounterScheme*> observers_;
};

}  // namespace secmem
