// Limited-MLP out-of-order core approximation.
//
// The MARSSx86 substitute (see DESIGN.md): what Figure 8 needs from a CPU
// model is faithful translation of memory-latency differences into IPC.
// An OoO window hides miss latency two ways: (i) non-memory work retires
// underneath outstanding misses, and (ii) up to `mlp` independent misses
// overlap. Both are modeled; dependent loads (pointer chases) stall the
// core until the data returns, as they would in hardware.
#pragma once

#include <cstdint>
#include <deque>

namespace secmem {

class CoreModel {
 public:
  /// `base_ipc`: peak non-memory retire rate. `mlp`: max in-flight misses.
  CoreModel(double base_ipc, unsigned mlp)
      : base_ipc_(base_ipc), mlp_(mlp) {}

  /// Retire `n` non-memory instructions.
  void advance_compute(std::uint64_t n) {
    clock_ += static_cast<double>(n) / base_ipc_;
    instructions_ += n;
  }

  /// Account one memory instruction whose data returns at `completion`
  /// (absolute cycles). `dependent` forces an immediate stall; otherwise
  /// the miss occupies an MLP slot and only stalls when slots run out.
  void memory_access(double completion, bool dependent) {
    ++instructions_;
    clock_ += 1.0 / base_ipc_;  // the instruction itself
    if (dependent) {
      if (completion > clock_) clock_ = completion;
      return;
    }
    outstanding_.push_back(completion);
    if (outstanding_.size() > mlp_) {
      const double oldest = outstanding_.front();
      outstanding_.pop_front();
      if (oldest > clock_) clock_ = oldest;
    }
  }

  /// A short-latency access (cache hit) that the window fully hides
  /// except for a small exposed cost.
  void fast_access(double exposed_cycles) {
    ++instructions_;
    clock_ += 1.0 / base_ipc_ + exposed_cycles;
  }

  /// Wait for all outstanding misses (end of run).
  void drain() {
    for (const double c : outstanding_)
      if (c > clock_) clock_ = c;
    outstanding_.clear();
  }

  double clock() const noexcept { return clock_; }
  std::uint64_t instructions() const noexcept { return instructions_; }

 private:
  double base_ipc_;
  unsigned mlp_;
  double clock_ = 0;
  std::uint64_t instructions_ = 0;
  std::deque<double> outstanding_;
};

}  // namespace secmem
