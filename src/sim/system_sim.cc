#include "sim/system_sim.h"

#include <algorithm>
#include <cmath>

namespace secmem {

SystemSimulator::SystemSimulator(const SystemConfig& config,
                                 const WorkloadProfile& profile)
    : config_(config),
      profile_(profile),
      dram_(config.dram, stats_),
      hierarchy_(config.hierarchy, stats_) {
  if (config.protection == Protection::kEncrypted) {
    scheme_ = make_counter_scheme(config.scheme,
                                  config.protected_bytes / 64);
    LayoutParams params;
    params.data_bytes = config.protected_bytes;
    params.blocks_per_counter_line = scheme_->blocks_per_storage_line();
    params.onchip_bytes = config.onchip_bytes;
    params.separate_macs =
        config.engine.mac_placement == MacPlacement::kSeparate;
    params.counter_bits_per_block = scheme_->bits_per_block();
    layout_ = std::make_unique<SecureRegionLayout>(params);
    engine_ = std::make_unique<EncryptionEngine>(config.engine, *scheme_,
                                                 *layout_, dram_, stats_);
  }
}

void SystemSimulator::handle_writeback(double now, std::uint64_t addr) {
  const auto cycle = static_cast<std::uint64_t>(now);
  for (CounterScheme* observer : observers_) observer->on_write(addr / 64);
  if (engine_) {
    engine_->write_block(cycle, addr);
  } else {
    dram_.access(cycle, addr, /*is_write=*/true);
  }
}

SimResult SystemSimulator::run(std::uint64_t refs_per_core) {
  std::vector<WorkloadGenerator> generators;
  generators.reserve(config_.cores);
  for (unsigned c = 0; c < config_.cores; ++c)
    generators.emplace_back(profile_, c, config_.seed);
  std::vector<std::uint64_t> remaining(
      config_.cores, refs_per_core + config_.warmup_refs);
  return run_with(
      [&generators](unsigned core) { return generators[core].next(); },
      std::move(remaining), config_.warmup_refs);
}

SimResult SystemSimulator::run_trace(
    const std::vector<std::vector<MemRef>>& traces) {
  std::vector<std::uint64_t> remaining(config_.cores, 0);
  std::vector<std::size_t> cursor(config_.cores, 0);
  for (unsigned c = 0; c < config_.cores && c < traces.size(); ++c)
    remaining[c] = traces[c].size();
  return run_with(
      [&traces, &cursor](unsigned core) {
        return traces[core][cursor[core]++];
      },
      std::move(remaining), config_.warmup_refs);
}

SimResult SystemSimulator::run_with(
    const std::function<MemRef(unsigned)>& next,
    std::vector<std::uint64_t> remaining, std::uint64_t warmup_refs) {
  const unsigned cores = config_.cores;
  std::vector<CoreModel> core_models;
  core_models.reserve(cores);
  for (unsigned c = 0; c < cores; ++c)
    core_models.emplace_back(config_.base_ipc, config_.mlp);

  // Per-core measured-region start: after warmup_refs (or immediately for
  // streams shorter than the warm-up).
  std::vector<std::uint64_t> measured_start(cores);
  for (unsigned c = 0; c < cores; ++c)
    measured_start[c] =
        remaining[c] > warmup_refs ? remaining[c] - warmup_refs : remaining[c];
  // Per-core (clock, instructions) snapshot at the end of warm-up.
  std::vector<double> warm_clock(cores, 0);
  std::vector<std::uint64_t> warm_instr(cores, 0);

  // Interleave cores in local-clock order so shared-resource contention
  // (L3, DRAM banks/buses) is seen in a causally sensible sequence.
  while (true) {
    unsigned next_core = cores;
    double min_clock = 0;
    for (unsigned c = 0; c < cores; ++c) {
      if (remaining[c] == 0) continue;
      if (next_core == cores || core_models[c].clock() < min_clock) {
        next_core = c;
        min_clock = core_models[c].clock();
      }
    }
    if (next_core == cores) break;  // all streams exhausted

    CoreModel& core = core_models[next_core];
    if (remaining[next_core] == measured_start[next_core]) {
      warm_clock[next_core] = core.clock();
      warm_instr[next_core] = core.instructions();
    }
    --remaining[next_core];

    const MemRef ref = next(next_core);
    core.advance_compute(ref.gap);

    const AccessOutcome outcome =
        hierarchy_.access(next_core, ref.addr, ref.is_write);
    const double now = core.clock();

    for (const std::uint64_t wb : outcome.writebacks)
      handle_writeback(now, wb);

    if (outcome.served_by == ServedBy::kMemory) {
      const auto cycle = static_cast<std::uint64_t>(now);
      // Every miss — load or store (write-allocate) — fetches the line
      // through the verified-read path.
      const std::uint64_t line_addr = ref.addr & ~63ULL;
      const std::uint64_t done_cycle =
          engine_ ? engine_->read_block(cycle, line_addr)
                  : dram_.access(cycle, line_addr, false);
      const double completion =
          static_cast<double>(done_cycle) + outcome.hit_latency;
      // Store misses retire into the write buffer; only loads can stall
      // the pipeline.
      if (ref.is_write)
        core.fast_access(0);
      else
        core.memory_access(completion, ref.dependent);
    } else {
      // Cache hits: L1 fully pipelined; deeper hits expose a fraction of
      // their latency only to dependent consumers.
      double exposed = 0;
      if (outcome.served_by != ServedBy::kL1 && ref.dependent && !ref.is_write)
        exposed = outcome.hit_latency;
      core.fast_access(exposed);
    }
  }

  // Drain: let outstanding misses land, flush dirty lines to memory.
  double end_clock = 0;
  for (CoreModel& core : core_models) {
    core.drain();
    end_clock = std::max(end_clock, core.clock());
  }
  for (const std::uint64_t wb : hierarchy_.flush_all())
    handle_writeback(end_clock, wb);
  if (engine_) engine_->flush_metadata(static_cast<std::uint64_t>(end_clock));

  SimResult result;
  result.cycles = static_cast<std::uint64_t>(std::ceil(end_clock));
  double warm_end = 0;
  std::uint64_t measured_instructions = 0;
  for (unsigned c = 0; c < cores; ++c) {
    result.instructions += core_models[c].instructions();
    measured_instructions += core_models[c].instructions() - warm_instr[c];
    warm_end = std::max(warm_end, warm_clock[c]);
  }
  const double measured_cycles = end_clock - warm_end;
  result.ipc = measured_cycles > 0
                   ? static_cast<double>(measured_instructions) /
                         measured_cycles
                   : 0;
  result.reencryptions =
      stats_.counter_value("engine.ctr_event.reencrypt");
  result.dram_reads = stats_.counter_value("dram.reads");
  result.dram_writes = stats_.counter_value("dram.writes");
  return result;
}

}  // namespace secmem
