// Memory-trace file I/O: drive the system simulator from externally
// recorded traces (e.g. converted from gem5/Pin/DynamoRIO output) instead
// of the built-in synthetic workloads.
//
// Text format, one reference per line:
//
//   <core> <hex-address> <R|W> [gap] [D]
//
//   core     decimal core id (0-based)
//   address  hex byte address, with or without 0x
//   R|W      read or write
//   gap      optional decimal count of non-memory instructions before
//            this reference (default 0)
//   D        optional flag: the consumer depends on this load immediately
//
// '#' starts a comment; blank lines are ignored. Malformed lines throw
// std::invalid_argument with the line number.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/mem_ref.h"

namespace secmem {

/// Per-core reference streams parsed from a trace.
using CoreTraces = std::vector<std::vector<MemRef>>;

/// Parse a trace from a stream. The result has max(core id)+1 entries
/// (at least `min_cores`).
CoreTraces load_trace(std::istream& in, unsigned min_cores = 1);

/// Convenience: load from a file path (throws std::runtime_error if the
/// file cannot be opened).
CoreTraces load_trace_file(const std::string& path, unsigned min_cores = 1);

/// Serialize per-core streams into the text format (interleaved
/// round-robin so replays roughly preserve arrival order).
void save_trace(std::ostream& out, const CoreTraces& traces);

}  // namespace secmem
