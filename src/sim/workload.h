// Synthetic PARSEC-like workload generators (paper §5.1's "PARSEC 2.1,
// sim-med, 4 threads" substitute — see DESIGN.md's substitution table).
//
// Table 2 and Figure 8 depend on the *structure* of each application's
// write stream — how per-block write counters within a 4KB block-group
// grow relative to each other — and on cache behaviour, not on
// instruction semantics. Each profile composes three archetypal
// behaviours whose parameters were set per application to reproduce the
// paper's qualitative per-app results:
//
//   sweep   repeated passes over a per-thread ring buffer (streaming
//           update loops). With skip_spread == 0 every block is updated
//           once per pass: deltas converge and the Fig 5b reset fires.
//           With skip_spread > 0 each block has a deterministic per-block
//           skip rate, so per-block write rates diverge *linearly* —
//           Δmin re-encoding defers re-encryption but 6-bit dual-length
//           lanes overflow earlier (the facesim anomaly).
//   random  single-block visits over the working set: background cache
//           pressure and realistic read mixes.
//   hot     update-heavy visits to a small hot region whose *structure*
//           is the Table 2 mechanism under test — see HotMode.
//
// Every visit issues a burst of word-granular references within the
// block (reads and writes), giving realistic L1/L2 locality; the counter
// subsystem sees one writeback per dirtied block per residency.
//
// Every generator is deterministic given (profile, thread, seed).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "sim/mem_ref.h"

namespace secmem {

/// How hot-set writes are distributed inside their 4KB block-groups —
/// each mode isolates one of the paper's §4 dynamics:
enum class HotMode : std::uint8_t {
  /// Strict round-robin over whole groups: every block written exactly
  /// once per pass -> deltas converge -> Fig 5b reset (dedup, freqmine).
  kSequential,
  /// Whole groups written at per-block rates spanning
  /// [1 - hot_spread, 1]: linear divergence -> Δmin re-encoding defers
  /// but cannot prevent re-encryption; 6-bit dual-length lanes overflow
  /// ~2x sooner (facesim).
  kSkewed,
  /// hot_blocks_per_group blocks confined to ONE 16-delta sub-group,
  /// rest of the group cold: Δmin = 0 so delta == split, while the
  /// dual-length overflow bits absorb the whole hot sub-group (vips).
  kSubgroup,
  /// One hot block per group plus occasional writes to warm neighbours
  /// in other sub-groups: Δmin = 0 AND expansion only covers the hot
  /// sub-group -> dual-length helps only modestly (canneal).
  kScatteredWarm,
};

struct WorkloadProfile {
  std::string name;
  /// Total data footprint across all 4 threads (cache-pressure knob).
  std::uint64_t working_set_bytes = 32 * 1024 * 1024;
  /// Per-thread streaming ring buffer swept by the sweep behaviour.
  std::uint64_t sweep_region_bytes = 128 * 1024;
  /// Mean non-memory instructions between memory references.
  unsigned mean_gap = 3;
  /// Fraction of loads whose consumer stalls immediately (pointer chase).
  double dependent_fraction = 0.2;
  /// Fraction of refs that are writes for the random behaviour.
  double write_fraction = 0.3;

  /// One hot-write component (a profile may have up to two).
  struct HotSpec {
    double weight = 0;  ///< share of block visits
    HotMode mode = HotMode::kSubgroup;
    unsigned groups = 2;            ///< hot 4KB groups per thread
    unsigned blocks_per_group = 8;  ///< kSubgroup only
    double spread = 0.14;           ///< kSkewed rate divergence
    double warm_fraction = 0.3;     ///< kScatteredWarm neighbour share
  };

  /// Behaviour mix (weights over block *visits*; normalized internally).
  double w_sweep = 0.0;
  double w_random = 0.0;
  HotSpec hot;   ///< primary counter-pressure component
  HotSpec hot2;  ///< optional secondary component

  /// Sweep: maximum per-block skip rate (0 = perfectly uniform passes;
  /// 0.25 = block-dependent write rates spanning [0.75, 1.0] of passes).
  double skip_spread = 0.0;

  /// Word-granular refs issued per block visit, by behaviour.
  unsigned sweep_burst = 8;
  unsigned random_burst = 3;
  unsigned hot_burst = 4;

  /// Spatial run length of a random visit: the visit covers this many
  /// consecutive 64-byte blocks (records/structs). Runs let consecutive
  /// misses share counter-storage lines and low tree nodes, which is
  /// what keeps real PARSEC's metadata amplification low; pointer-chasing
  /// workloads (canneal) set 1.
  unsigned random_run = 8;
};

/// The 11 PARSEC 2.1 applications the paper ran (§5.1), as profiles.
const std::vector<WorkloadProfile>& parsec_profiles();

/// Find a profile by name (throws std::out_of_range if unknown).
const WorkloadProfile& profile_by_name(const std::string& name);

/// Deterministic per-thread reference generator.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadProfile& profile, unsigned thread,
                    std::uint64_t seed);

  /// Next memory reference of this thread's stream.
  MemRef next();

  /// Sweep passes completed so far (test/diagnostic hook).
  std::uint64_t sweep_passes() const noexcept { return sweep_pass_; }

 private:
  /// Instantiated hot component: group bases + round-robin cursor.
  struct HotState {
    WorkloadProfile::HotSpec spec;
    std::vector<std::uint64_t> group_base;  ///< first block of each group
    std::uint64_t seq_pos = 0;              ///< kSequential cursor
  };

  void start_visit();
  void start_sweep_visit();
  void start_random_visit();
  void start_hot_visit(HotState& hot);

  /// Deterministic per-block skip rate in [0, skip_spread].
  double skip_rate(std::uint64_t block) const;

  WorkloadProfile profile_;
  Xoshiro256 rng_;

  // Thread-private address ranges (data-parallel split, like PARSEC).
  std::uint64_t quarter_base_;   ///< first block of this thread's quarter
  std::uint64_t quarter_blocks_;

  // Sweep ring buffer state.
  std::uint64_t sweep_blocks_;
  std::uint64_t sweep_pos_ = 0;
  std::uint64_t sweep_pass_ = 0;

  HotState hot_;
  HotState hot2_;

  // Current visit: pending word refs within the visited block, plus the
  // remaining consecutive blocks of a spatial run.
  std::uint64_t visit_block_ = 0;
  unsigned visit_remaining_ = 0;
  unsigned run_remaining_ = 0;
  unsigned run_burst_ = 0;
  bool visit_writes_ = false;   ///< visit dirties the block
  bool visit_dependent_ = false;
  unsigned visit_word_ = 0;

  std::array<double, 4> cumulative_weights_{};
};

}  // namespace secmem
