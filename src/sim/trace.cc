#include "sim/trace.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace secmem {

CoreTraces load_trace(std::istream& in, unsigned min_cores) {
  CoreTraces traces(min_cores);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    unsigned core;
    std::string addr_text, rw;
    if (!(fields >> core)) continue;  // blank / comment-only line
    if (!(fields >> addr_text >> rw) ||
        (rw != "R" && rw != "W" && rw != "r" && rw != "w")) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": expected '<core> <hexaddr> <R|W>'");
    }
    MemRef ref{};
    try {
      ref.addr = std::stoull(addr_text, nullptr, 16);
    } catch (const std::exception&) {
      throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                  ": bad address '" + addr_text + "'");
    }
    ref.is_write = (rw == "W" || rw == "w");

    std::string token;
    while (fields >> token) {
      if (token == "D" || token == "d") {
        ref.dependent = true;
      } else {
        try {
          ref.gap = static_cast<std::uint32_t>(std::stoul(token));
        } catch (const std::exception&) {
          throw std::invalid_argument("trace line " +
                                      std::to_string(line_no) +
                                      ": bad field '" + token + "'");
        }
      }
    }
    if (core >= traces.size()) traces.resize(core + 1);
    traces[core].push_back(ref);
  }
  return traces;
}

CoreTraces load_trace_file(const std::string& path, unsigned min_cores) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return load_trace(in, min_cores);
}

void save_trace(std::ostream& out, const CoreTraces& traces) {
  out << "# secmem trace: <core> <hexaddr> <R|W> [gap] [D]\n";
  std::size_t longest = 0;
  for (const auto& t : traces) longest = std::max(longest, t.size());
  for (std::size_t i = 0; i < longest; ++i) {
    for (std::size_t core = 0; core < traces.size(); ++core) {
      if (i >= traces[core].size()) continue;
      const MemRef& ref = traces[core][i];
      out << core << " " << std::hex << ref.addr << std::dec << " "
          << (ref.is_write ? 'W' : 'R');
      if (ref.gap != 0) out << " " << ref.gap;
      if (ref.dependent) out << " D";
      out << "\n";
    }
  }
}

}  // namespace secmem
