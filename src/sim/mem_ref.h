// Memory-reference stream element produced by workload generators and
// consumed by the system simulator.
#pragma once

#include <cstdint>

namespace secmem {

struct MemRef {
  std::uint64_t addr;      ///< byte address within the protected region
  bool is_write;
  /// Non-memory instructions executed before this reference (models the
  /// workload's compute/memory ratio).
  std::uint32_t gap;
  /// True if the consuming instruction depends on the loaded value
  /// immediately (pointer chase) — the core cannot hide the miss.
  bool dependent;
};

}  // namespace secmem
