#include "sim/workload.h"

#include <cassert>
#include <stdexcept>

namespace secmem {

namespace {
constexpr std::uint64_t kMiB = 1024 * 1024;
constexpr std::uint64_t kKiB = 1024;

std::uint64_t hash_block(std::uint64_t block, std::uint64_t salt) {
  std::uint64_t s = block * 0x9E3779B97F4A7C15ULL + salt;
  return splitmix64(s);
}

std::vector<WorkloadProfile> build_profiles() {
  using HotSpec = WorkloadProfile::HotSpec;
  std::vector<WorkloadProfile> profiles;

  // Parameters are calibrated so Table 2's per-app ordering and Figure
  // 8's sensitivity groups reproduce; bench_workload_diag is the
  // calibration harness and EXPERIMENTS.md maps mechanism -> number.
  {
    WorkloadProfile p;
    p.name = "facesim";
    p.working_set_bytes = 96 * kMiB;
    p.sweep_region_bytes = 96 * kKiB;
    p.mean_gap = 40;
    p.dependent_fraction = 0.25;
    p.w_sweep = 0.20;
    p.w_random = 0.20;
    p.write_fraction = 0.4;
    // Physics arrays rewritten every frame at per-element rates that
    // differ by ~22%: deltas diverge linearly (the dual-length anomaly).
    p.hot = HotSpec{0.60, HotMode::kSkewed, 4, 0, 0.15, 0};
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "dedup";
    p.working_set_bytes = 64 * kMiB;
    p.sweep_region_bytes = 64 * kKiB;
    p.mean_gap = 40;
    p.dependent_fraction = 0.3;
    p.w_sweep = 0.30;
    p.w_random = 0.33;
    p.write_fraction = 0.45;
    // Ring of chunk buffers rewritten strictly in order -> convergence
    // resets; plus clustered hash-table hot lines.
    p.hot = HotSpec{0.34, HotMode::kSequential, 2, 0, 0, 0};
    p.hot2 = HotSpec{0.015, HotMode::kSubgroup, 2, 8, 0, 0};
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "canneal";
    p.working_set_bytes = 96 * kMiB;
    p.mean_gap = 32;
    p.dependent_fraction = 0.5;  // pointer chasing
    p.w_random = 0.994;
    p.write_fraction = 0.25;
    p.random_burst = 3;
    p.random_run = 2;  // netlist elements span ~2 lines
    // Scattered swap targets: one hot block per group + warm neighbours.
    p.hot = HotSpec{0.006, HotMode::kScatteredWarm, 5, 0, 0, 0.4};
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "vips";
    p.working_set_bytes = 48 * kMiB;
    p.mean_gap = 36;
    p.dependent_fraction = 0.15;
    p.w_random = 0.988;
    p.write_fraction = 0.4;
    // Tile accumulation buffers: 8 contiguous lines in one sub-group.
    p.hot = HotSpec{0.012, HotMode::kSubgroup, 2, 8, 0, 0};
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "ferret";
    p.working_set_bytes = 24 * kMiB;
    p.sweep_region_bytes = 96 * kKiB;
    p.mean_gap = 36;
    p.dependent_fraction = 0.35;
    p.w_sweep = 0.44;
    p.w_random = 0.52;
    p.write_fraction = 0.3;
    p.hot = HotSpec{0.035, HotMode::kSequential, 1, 0, 0, 0};
    p.hot2 = HotSpec{0.005, HotMode::kSubgroup, 1, 8, 0, 0};
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "fluidanimate";
    p.working_set_bytes = 48 * kMiB;
    p.sweep_region_bytes = 512 * kKiB;
    p.mean_gap = 30;
    p.dependent_fraction = 0.2;
    p.w_sweep = 0.70;
    p.w_random = 0.2975;
    p.write_fraction = 0.25;
    p.hot = HotSpec{0.0025, HotMode::kSubgroup, 1, 2, 0, 0};
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "freqmine";
    p.working_set_bytes = 32 * kMiB;
    p.sweep_region_bytes = 1 * kMiB;
    p.mean_gap = 30;
    p.dependent_fraction = 0.4;
    p.w_sweep = 0.80;
    p.w_random = 0.15;
    p.write_fraction = 0.2;
    // A small table rebuilt strictly in order: resets kill every overflow.
    p.hot = HotSpec{0.05, HotMode::kSequential, 1, 0, 0, 0};
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "raytrace";
    p.working_set_bytes = 24 * kMiB;
    p.mean_gap = 36;
    p.dependent_fraction = 0.5;
    p.w_random = 0.997;
    p.write_fraction = 0.06;
    p.random_run = 4;  // BVH node clusters
    p.hot = HotSpec{0.003, HotMode::kSubgroup, 1, 2, 0, 0};
    profiles.push_back(p);
  }
  // The three cache-resident applications: small working sets, no hot
  // counter pressure (paper §5.2: "no measurable impact ... swaptions,
  // blackscholes, bodytrack"; Table 2: zero re-encryptions).
  {
    WorkloadProfile p;
    p.name = "swaptions";
    p.working_set_bytes = 2 * kMiB;
    p.mean_gap = 40;
    p.dependent_fraction = 0.1;
    p.w_random = 1.0;
    p.write_fraction = 0.3;
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "blackscholes";
    p.working_set_bytes = 4 * kMiB;
    p.sweep_region_bytes = 1 * kMiB;
    p.mean_gap = 40;
    p.dependent_fraction = 0.05;
    p.w_sweep = 1.0;
    profiles.push_back(p);
  }
  {
    WorkloadProfile p;
    p.name = "bodytrack";
    p.working_set_bytes = 6 * kMiB;
    p.sweep_region_bytes = 512 * kKiB;
    p.mean_gap = 36;
    p.dependent_fraction = 0.15;
    p.w_random = 0.7;
    p.w_sweep = 0.3;
    p.write_fraction = 0.25;
    profiles.push_back(p);
  }
  return profiles;
}
}  // namespace

const std::vector<WorkloadProfile>& parsec_profiles() {
  static const std::vector<WorkloadProfile> profiles = build_profiles();
  return profiles;
}

const WorkloadProfile& profile_by_name(const std::string& name) {
  for (const WorkloadProfile& p : parsec_profiles())
    if (p.name == name) return p;
  throw std::out_of_range("unknown workload profile: " + name);
}

WorkloadGenerator::WorkloadGenerator(const WorkloadProfile& profile,
                                     unsigned thread, std::uint64_t seed)
    : profile_(profile),
      rng_(seed * 0x9E3779B97F4A7C15ULL + thread + 1) {
  const std::uint64_t total_blocks = profile.working_set_bytes / 64;
  assert(total_blocks >= 256);
  quarter_blocks_ = total_blocks / 4;
  quarter_base_ = (thread % 4) * quarter_blocks_;
  sweep_blocks_ =
      std::min<std::uint64_t>(profile.sweep_region_bytes / 64, quarter_blocks_);
  if (sweep_blocks_ == 0) sweep_blocks_ = 1;

  // Hot groups sit in the back half of the quarter so they do not collide
  // with the sweep ring at the front.
  auto init_hot = [&](HotState& state, const WorkloadProfile::HotSpec& spec,
                      std::uint64_t salt) {
    state.spec = spec;
    if (spec.weight <= 0) return;
    const std::uint64_t groups_in_quarter = quarter_blocks_ / 64;
    const std::uint64_t half = std::max<std::uint64_t>(groups_in_quarter / 2, 1);
    const std::uint64_t n = std::min<std::uint64_t>(spec.groups, half / 2 + 1);
    const std::uint64_t stride = std::max<std::uint64_t>(half / (2 * n), 1);
    for (std::uint64_t g = 0; g < n; ++g) {
      // Back half of the quarter, even stride; hot2 offset by one group.
      std::uint64_t group = half + 2 * g * stride + salt;
      if (group >= groups_in_quarter) group = groups_in_quarter - 1;
      state.group_base.push_back((quarter_base_ / 64 + group) * 64);
    }
  };
  init_hot(hot_, profile.hot, 0);
  init_hot(hot2_, profile.hot2, 1);

  double acc = 0, total = 0;
  const double weights[4] = {profile.w_sweep, profile.w_random,
                             profile.hot.weight, profile.hot2.weight};
  for (double w : weights) total += w;
  if (total == 0) total = 1;
  for (int i = 0; i < 4; ++i) {
    acc += weights[i] / total;
    cumulative_weights_[i] = acc;
  }
}

double WorkloadGenerator::skip_rate(std::uint64_t block) const {
  if (profile_.skip_spread == 0) return 0;
  const double u =
      static_cast<double>(hash_block(block, 0xfacade) & 0xFF) / 255.0;
  return profile_.skip_spread * u;
}

void WorkloadGenerator::start_sweep_visit() {
  // Find the next non-skipped block of the ring; each block's skip rate
  // is a deterministic function of its index, so per-block write rates
  // diverge linearly across passes.
  for (;;) {
    const std::uint64_t block = quarter_base_ + sweep_pos_;
    sweep_pos_ = (sweep_pos_ + 1) % sweep_blocks_;
    if (sweep_pos_ == 0) ++sweep_pass_;
    if (!rng_.chance(skip_rate(block))) {
      visit_block_ = block;
      break;
    }
  }
  visit_remaining_ = profile_.sweep_burst;
  visit_writes_ = true;  // update loop: load-compute-store per word
  visit_dependent_ = false;
  visit_word_ = 0;
}

void WorkloadGenerator::start_random_visit() {
  const unsigned run = std::max(profile_.random_run, 1u);
  visit_block_ = quarter_base_ + rng_.next_below(quarter_blocks_);
  if (visit_block_ + run > quarter_base_ + quarter_blocks_)
    visit_block_ = quarter_base_;
  visit_remaining_ = profile_.random_burst;
  run_remaining_ = run - 1;
  run_burst_ = profile_.random_burst;
  visit_writes_ = rng_.chance(profile_.write_fraction);
  visit_dependent_ = rng_.chance(profile_.dependent_fraction);
  visit_word_ = static_cast<unsigned>(rng_.next_below(8));
}

void WorkloadGenerator::start_hot_visit(HotState& hot) {
  if (hot.group_base.empty()) {
    start_random_visit();
    return;
  }
  const WorkloadProfile::HotSpec& spec = hot.spec;
  switch (spec.mode) {
    case HotMode::kSequential: {
      // Round-robin over every block of every hot group: each pass
      // writes each block exactly once -> deltas converge -> reset.
      const std::uint64_t total = hot.group_base.size() * 64;
      const std::uint64_t idx = hot.seq_pos;
      hot.seq_pos = (hot.seq_pos + 1) % total;
      visit_block_ = hot.group_base[idx / 64] + (idx % 64);
      break;
    }
    case HotMode::kSkewed: {
      // Skewed passes: round-robin over whole groups (like kSequential,
      // so revisit spacing is regular and every visit really writes
      // back), but each block is skipped per pass with a deterministic
      // per-block rate in [0, spread] — per-block write rates span
      // [1-spread, 1] and deltas diverge linearly.
      const std::uint64_t total = hot.group_base.size() * 64;
      for (;;) {
        const std::uint64_t idx = hot.seq_pos;
        hot.seq_pos = (hot.seq_pos + 1) % total;
        const std::uint64_t block = hot.group_base[idx / 64] + (idx % 64);
        const double u =
            static_cast<double>(hash_block(block, 0x5eed) & 0xFF) / 255.0;
        if (!rng_.chance(spec.spread * u)) {
          visit_block_ = block;
          break;
        }
      }
      break;
    }
    case HotMode::kSubgroup: {
      // blocks_per_group hot lines inside ONE 16-delta sub-group.
      const std::uint64_t base =
          hot.group_base[rng_.next_below(hot.group_base.size())];
      const unsigned n = std::min(spec.blocks_per_group, 16u);
      visit_block_ = base + rng_.next_below(n ? n : 1);
      break;
    }
    case HotMode::kScatteredWarm: {
      // One hot block per group (sub-group 0) plus occasional warm
      // writes landing in *other* sub-groups of the same group.
      const std::uint64_t base =
          hot.group_base[rng_.next_below(hot.group_base.size())];
      if (rng_.chance(spec.warm_fraction)) {
        // Warm writes concentrate on three fixed slots, one per remaining
        // sub-group: individually warm enough to overflow a 6-bit delta
        // but not a 7-bit one.
        const std::uint64_t j = rng_.next_below(3);
        const std::uint64_t warm_slot =
            16 * (1 + j) + (hash_block(base + j, 0x3a3a) & 15);
        visit_block_ = base + warm_slot;
      } else {
        visit_block_ = base + (hash_block(base, 0x407) & 15);
      }
      break;
    }
  }
  visit_remaining_ = profile_.hot_burst;
  visit_writes_ = true;  // hot data is update-driven
  visit_dependent_ = false;
  visit_word_ = 0;
}

void WorkloadGenerator::start_visit() {
  const double r = rng_.next_double();
  if (r < cumulative_weights_[0])
    start_sweep_visit();
  else if (r < cumulative_weights_[1])
    start_random_visit();
  else if (r < cumulative_weights_[2])
    start_hot_visit(hot_);
  else
    start_hot_visit(hot2_);
}

MemRef WorkloadGenerator::next() {
  if (visit_remaining_ == 0) {
    if (run_remaining_ > 0) {
      // Continue the spatial run: next consecutive block, same mode.
      --run_remaining_;
      ++visit_block_;
      visit_remaining_ = run_burst_;
      visit_word_ = 0;
      visit_dependent_ = false;  // streaming within a run is prefetchable
    } else {
      start_visit();
    }
  }

  MemRef ref{};
  ref.gap = static_cast<std::uint32_t>(
      rng_.next_below(2 * profile_.mean_gap + 1));
  ref.addr = visit_block_ * 64 + (visit_word_ & 7) * 8;
  ++visit_word_;
  --visit_remaining_;

  if (visit_writes_) {
    // Update loop: alternate load/store over the block's words; the last
    // ref is a store so the line is left dirty.
    ref.is_write = (visit_remaining_ % 2) == 0;
  } else {
    ref.is_write = false;
  }
  // Only the first touch of a (likely missing) line can expose latency to
  // a dependent consumer; later words hit L1.
  ref.dependent = !ref.is_write && visit_dependent_ && visit_word_ == 1;
  return ref;
}

}  // namespace secmem
