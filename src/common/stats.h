// Lightweight statistics collection used across the simulator and engine
// stack. Components register named counters/scalars/histograms with a
// StatRegistry; benches and tools dump or JSON-export the registry at the
// end of a run. No global state: registries are plain objects passed
// explicitly.
//
// Names are dotted hierarchical paths ("dram.ch0.row_hits",
// "engine.shard3.reads"); metric_path() builds them from segments. The
// first segment is the namespace, and literal names must use a
// registered one (engine, tree_cache, cache, metacache, reenc, dram,
// sim, trace, bench) — enforced by the `stat-name` rule of
// tools/secmem-lint, so exported JSON stays greppable and dashboards
// don't chase typo'd prefixes.
// snapshot() captures the registry's current values as plain data;
// snapshot_diff() subtracts two captures, which is how benches report
// per-phase deltas without resetting live counters.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace secmem {

/// A monotonically increasing event counter.
class StatCounter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Running mean/min/max over a stream of samples. min()/max() are 0 until
/// the first sample; from then on they track the observed extrema (a
/// first positive sample yields a positive min, never 0).
class StatScalar {
 public:
  void sample(double v) noexcept;
  /// Fold another scalar's samples into this one. Empty sources are
  /// ignored, so merging a populated scalar with untouched per-shard
  /// slots never drags min() down to 0.
  void merge(const StatScalar& other) noexcept;
  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }
  void reset() noexcept { *this = StatScalar{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Bucketing rule for a StatHistogram.
enum class HistScale : std::uint8_t {
  kLinear,  ///< bucket i covers [i*width, (i+1)*width)
  kLog2,    ///< bucket 0 is {0}; bucket i>0 covers [2^(i-1), 2^i)
};

const char* hist_scale_name(HistScale scale) noexcept;

/// Fixed-bucket histogram (linear or log2 buckets plus overflow).
class StatHistogram {
 public:
  StatHistogram() : StatHistogram(16, 1) {}
  StatHistogram(std::size_t buckets, std::uint64_t bucket_width,
                HistScale scale = HistScale::kLinear);

  void sample(std::uint64_t v) noexcept;
  /// Bulk-add `n` events to bucket `i` (`i == bucket_count()` targets the
  /// overflow bucket) — how MetricsSink publishes its atomic buckets.
  void add_bucket_count(std::size_t i, std::uint64_t n) noexcept;

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t bucket_width() const noexcept { return width_; }
  HistScale scale() const noexcept { return scale_; }
  /// Smallest value that lands in bucket `i`.
  std::uint64_t bucket_lower_bound(std::size_t i) const noexcept;
  void reset() noexcept;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t width_;
  HistScale scale_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Plain-data capture of a registry at one instant (see
/// StatRegistry::snapshot). Subtractable and JSON-serializable.
struct RegistrySnapshot {
  struct Scalar {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double mean() const noexcept {
      return count ? sum / static_cast<double>(count) : 0.0;
    }
  };
  struct Histogram {
    HistScale scale = HistScale::kLinear;
    std::uint64_t bucket_width = 1;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    std::uint64_t total = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Scalar> scalars;
  std::map<std::string, Histogram> histograms;

  void write_json(std::ostream& os) const;
};

/// `after - before`, element-wise: counters, histogram buckets, and scalar
/// count/sum subtract; scalar min/max are taken from `after` (extrema are
/// not invertible). Entries missing from `before` pass through unchanged.
RegistrySnapshot snapshot_diff(const RegistrySnapshot& after,
                               const RegistrySnapshot& before);

/// Join non-empty segments with dots: metric_path({"engine", "shard3",
/// "reads"}) == "engine.shard3.reads".
std::string metric_path(std::initializer_list<std::string_view> parts);

/// Name → stat map. Lookup lazily creates; names use dotted paths,
/// e.g. "dram.ch0.row_hits". References returned by counter() / scalar()
/// / histogram() stay valid for the registry's lifetime (std::map node
/// stability), so hot paths should look up once and cache the pointer.
class StatRegistry {
 public:
  StatCounter& counter(const std::string& name) { return counters_[name]; }
  StatScalar& scalar(const std::string& name) { return scalars_[name]; }
  /// Lazily creates with default shape (16 linear buckets of width 1).
  StatHistogram& histogram(const std::string& name) {
    return histograms_[name];
  }
  /// Lazily creates with the given shape; an existing histogram keeps its
  /// original shape (first registration wins).
  StatHistogram& histogram(const std::string& name, std::size_t buckets,
                           std::uint64_t bucket_width,
                           HistScale scale = HistScale::kLinear);

  const std::map<std::string, StatCounter>& counters() const { return counters_; }
  const std::map<std::string, StatScalar>& scalars() const { return scalars_; }
  const std::map<std::string, StatHistogram>& histograms() const {
    return histograms_;
  }

  /// Value of a counter, 0 if never touched.
  std::uint64_t counter_value(const std::string& name) const;

  /// Fold `other`'s stats into this registry, each name prefixed with
  /// `prefix` (joined with a dot when non-empty) — how benches collect
  /// several per-run registries into one report.
  void merge_from(const StatRegistry& other, const std::string& prefix = "");

  RegistrySnapshot snapshot() const;

  void reset();
  /// Human-readable table: counters, scalars, and histograms.
  void dump(std::ostream& os) const;
  /// Machine-readable export; see RegistrySnapshot::write_json.
  void write_json(std::ostream& os) const { snapshot().write_json(os); }

 private:
  std::map<std::string, StatCounter> counters_;
  std::map<std::string, StatScalar> scalars_;
  std::map<std::string, StatHistogram> histograms_;
};

}  // namespace secmem
