// Lightweight statistics collection used across the simulator stack.
// Components register named counters/histograms with a StatRegistry owned
// by the top-level simulation; benches dump the registry at the end of a
// run. No global state: registries are plain objects passed explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace secmem {

/// A monotonically increasing event counter.
class StatCounter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Running mean/min/max over a stream of samples.
class StatScalar {
 public:
  void sample(double v) noexcept;
  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }
  void reset() noexcept { *this = StatScalar{}; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Fixed-bucket histogram (linear buckets plus overflow).
class StatHistogram {
 public:
  StatHistogram() : StatHistogram(16, 1) {}
  StatHistogram(std::size_t buckets, std::uint64_t bucket_width);

  void sample(std::uint64_t v) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
  std::size_t bucket_count() const noexcept { return buckets_.size(); }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t bucket_width() const noexcept { return width_; }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t width_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Name → stat map. Lookup lazily creates; names use dotted paths,
/// e.g. "dram.ch0.row_hits".
class StatRegistry {
 public:
  StatCounter& counter(const std::string& name) { return counters_[name]; }
  StatScalar& scalar(const std::string& name) { return scalars_[name]; }

  const std::map<std::string, StatCounter>& counters() const { return counters_; }
  const std::map<std::string, StatScalar>& scalars() const { return scalars_; }

  /// Value of a counter, 0 if never touched.
  std::uint64_t counter_value(const std::string& name) const;

  void reset();
  void dump(std::ostream& os) const;

 private:
  std::map<std::string, StatCounter> counters_;
  std::map<std::string, StatScalar> scalars_;
};

}  // namespace secmem
