// Unified outcome vocabulary for secure-memory operations.
//
// Every data-path entry point (block reads, byte-level I/O, scrubbing)
// reports one of these values instead of a bare bool or a per-class enum.
// The enumerators are severity-ordered: kOk < corrected states < failure
// states, so `worse()` can fold the outcome of a multi-block operation
// into the single most severe status, and `status_ok()` is a simple
// threshold compare.
#pragma once

#include <cstdint>

namespace secmem {

enum class [[nodiscard]] Status : std::uint8_t {
  kOk = 0,              ///< verified clean
  kCorrectedMacField,   ///< single-bit flip in the MAC lane repaired
  kCorrectedData,       ///< 1-2 data bits repaired by flip-and-check
  kCorrectedWord,       ///< SEC-DED corrected word(s) (separate-MAC mode)
  kIntegrityViolation,  ///< tamper or uncorrectable fault in data/MAC
  kSnapshotIoError,     ///< snapshot stream write failed; the chain did
                        ///< not advance — retry or fall back to save()
  kCounterTampered,     ///< counter storage failed tree authentication
  kRegionPoisoned,      ///< engine fail-closed (e.g. rotation rollback
                        ///< failure left shards split-keyed); restore()
                        ///< from a good image is the only way out
};

constexpr const char* to_string(Status status) noexcept {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kCorrectedMacField: return "corrected-mac-field";
    case Status::kCorrectedData: return "corrected-data";
    case Status::kCorrectedWord: return "corrected-word";
    case Status::kIntegrityViolation: return "integrity-violation";
    case Status::kSnapshotIoError: return "snapshot-io-error";
    case Status::kCounterTampered: return "counter-tampered";
    case Status::kRegionPoisoned: return "region-poisoned";
  }
  return "?";
}

/// Data was served (possibly after correction).
constexpr bool status_ok(Status status) noexcept {
  return status < Status::kIntegrityViolation;
}

/// The more severe of two outcomes.
constexpr Status worse(Status a, Status b) noexcept { return a < b ? b : a; }

}  // namespace secmem
