// Bit-manipulation primitives shared by the ECC codecs, counter encoders,
// and crypto layers. All functions are constexpr-friendly and operate on
// explicit-width integer types so codec layouts are unambiguous.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

namespace secmem {

/// Number of set bits.
constexpr int popcount64(std::uint64_t v) noexcept { return std::popcount(v); }

/// Even parity over a 64-bit word: 1 if an odd number of bits are set.
constexpr unsigned parity64(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::popcount(v) & 1);
}

/// Even parity over a byte buffer.
unsigned parity_bytes(std::span<const std::uint8_t> bytes) noexcept;

/// Extract `width` bits starting at bit `pos` (LSB-first) from `v`.
/// `pos + width` must be <= 64; width == 64 returns v >> pos.
constexpr std::uint64_t extract_bits(std::uint64_t v, unsigned pos,
                                     unsigned width) noexcept {
  const std::uint64_t shifted = v >> pos;
  if (width >= 64) return shifted;
  return shifted & ((std::uint64_t{1} << width) - 1);
}

/// Insert the low `width` bits of `field` into `v` at bit `pos`.
constexpr std::uint64_t insert_bits(std::uint64_t v, unsigned pos,
                                    unsigned width,
                                    std::uint64_t field) noexcept {
  const std::uint64_t mask =
      (width >= 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (v & ~(mask << pos)) | ((field & mask) << pos);
}

/// Test bit `pos` of an arbitrary-length bit string stored LSB-first in
/// bytes (bit 0 = bit 0 of bytes[0]).
bool get_bit(std::span<const std::uint8_t> bytes, std::size_t pos) noexcept;

/// Set bit `pos` of a byte buffer to `value`.
void set_bit(std::span<std::uint8_t> bytes, std::size_t pos,
             bool value) noexcept;

/// Flip bit `pos` of a byte buffer.
void flip_bit(std::span<std::uint8_t> bytes, std::size_t pos) noexcept;

/// Number of set bits over a byte buffer.
std::size_t popcount_bytes(std::span<const std::uint8_t> bytes) noexcept;

/// Extract a bit field of up to 64 bits from an arbitrary-length
/// LSB-first bit string. `width` <= 64.
std::uint64_t extract_field(std::span<const std::uint8_t> bytes,
                            std::size_t bit_pos, unsigned width) noexcept;

/// Write a bit field of up to 64 bits into an arbitrary-length LSB-first
/// bit string.
void insert_field(std::span<std::uint8_t> bytes, std::size_t bit_pos,
                  unsigned width, std::uint64_t field) noexcept;

/// Load a little-endian 64-bit word from 8 bytes.
constexpr std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}

/// Store a 64-bit word to 8 bytes little-endian.
constexpr void store_le64(std::uint8_t* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Load a little-endian 32-bit word.
constexpr std::uint32_t load_le32(const std::uint8_t* p) noexcept {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

/// Store a little-endian 32-bit word.
constexpr void store_le32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

/// True if v is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of a power of two.
constexpr unsigned log2_pow2(std::uint64_t v) noexcept {
  return static_cast<unsigned>(std::countr_zero(v));
}

/// Ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace secmem
