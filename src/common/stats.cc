#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <iomanip>

namespace secmem {

void StatScalar::sample(double v) noexcept {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

void StatScalar::merge(const StatScalar& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

const char* hist_scale_name(HistScale scale) noexcept {
  return scale == HistScale::kLog2 ? "log2" : "linear";
}

StatHistogram::StatHistogram(std::size_t buckets, std::uint64_t bucket_width,
                             HistScale scale)
    : buckets_(buckets ? buckets : 1, 0),
      width_(bucket_width == 0 ? 1 : bucket_width),
      scale_(scale) {}

void StatHistogram::sample(std::uint64_t v) noexcept {
  const std::size_t idx =
      scale_ == HistScale::kLog2
          ? static_cast<std::size_t>(std::bit_width(v))
          : static_cast<std::size_t>(v / width_);
  if (idx < buckets_.size())
    ++buckets_[idx];
  else
    ++overflow_;
  ++total_;
}

void StatHistogram::add_bucket_count(std::size_t i,
                                     std::uint64_t n) noexcept {
  if (n == 0) return;
  if (i < buckets_.size())
    buckets_[i] += n;
  else
    overflow_ += n;
  total_ += n;
}

std::uint64_t StatHistogram::bucket_lower_bound(
    std::size_t i) const noexcept {
  if (scale_ == HistScale::kLog2)
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  return i * width_;
}

void StatHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  overflow_ = 0;
  total_ = 0;
}

StatHistogram& StatRegistry::histogram(const std::string& name,
                                       std::size_t buckets,
                                       std::uint64_t bucket_width,
                                       HistScale scale) {
  auto [it, inserted] = histograms_.try_emplace(
      name, StatHistogram(buckets, bucket_width, scale));
  return it->second;
}

std::uint64_t StatRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

namespace {
std::string joined(const std::string& prefix, const std::string& name) {
  return prefix.empty() ? name : prefix + "." + name;
}
}  // namespace

void StatRegistry::merge_from(const StatRegistry& other,
                              const std::string& prefix) {
  for (const auto& [name, c] : other.counters_)
    counters_[joined(prefix, name)].inc(c.value());
  for (const auto& [name, s] : other.scalars_)
    scalars_[joined(prefix, name)].merge(s);
  for (const auto& [name, h] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(
        joined(prefix, name),
        StatHistogram(h.bucket_count(), h.bucket_width(), h.scale()));
    StatHistogram& dest = it->second;
    const std::size_t common =
        std::min(dest.bucket_count(), h.bucket_count());
    for (std::size_t i = 0; i < common; ++i)
      dest.add_bucket_count(i, h.bucket(i));
    for (std::size_t i = common; i < h.bucket_count(); ++i)
      dest.add_bucket_count(dest.bucket_count(), h.bucket(i));
    dest.add_bucket_count(dest.bucket_count(), h.overflow());
  }
}

RegistrySnapshot StatRegistry::snapshot() const {
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, s] : scalars_)
    snap.scalars[name] = {s.count(), s.sum(), s.min(), s.max()};
  for (const auto& [name, h] : histograms_) {
    RegistrySnapshot::Histogram out;
    out.scale = h.scale();
    out.bucket_width = h.bucket_width();
    out.buckets.resize(h.bucket_count());
    for (std::size_t i = 0; i < h.bucket_count(); ++i)
      out.buckets[i] = h.bucket(i);
    out.overflow = h.overflow();
    out.total = h.total();
    snap.histograms[name] = std::move(out);
  }
  return snap;
}

RegistrySnapshot snapshot_diff(const RegistrySnapshot& after,
                               const RegistrySnapshot& before) {
  RegistrySnapshot diff = after;
  for (auto& [name, value] : diff.counters) {
    auto it = before.counters.find(name);
    if (it != before.counters.end())
      value -= std::min(value, it->second);
  }
  for (auto& [name, s] : diff.scalars) {
    auto it = before.scalars.find(name);
    if (it == before.scalars.end()) continue;
    s.count -= std::min(s.count, it->second.count);
    s.sum -= it->second.sum;
  }
  for (auto& [name, h] : diff.histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) continue;
    const auto& old = it->second;
    for (std::size_t i = 0;
         i < std::min(h.buckets.size(), old.buckets.size()); ++i)
      h.buckets[i] -= std::min(h.buckets[i], old.buckets[i]);
    h.overflow -= std::min(h.overflow, old.overflow);
    h.total -= std::min(h.total, old.total);
  }
  return diff;
}

std::string metric_path(std::initializer_list<std::string_view> parts) {
  std::string path;
  for (const std::string_view part : parts) {
    if (part.empty()) continue;
    if (!path.empty()) path += '.';
    path += part;
  }
  return path;
}

void StatRegistry::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, s] : scalars_) s.reset();
  for (auto& [_, h] : histograms_) h.reset();
}

void StatRegistry::dump(std::ostream& os) const {
  for (const auto& [name, c] : counters_)
    os << std::left << std::setw(48) << name << c.value() << '\n';
  for (const auto& [name, s] : scalars_) {
    os << std::left << std::setw(48) << name << "mean=" << s.mean()
       << " min=" << s.min() << " max=" << s.max() << " n=" << s.count()
       << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << std::left << std::setw(48) << name << "n=" << h.total()
       << " scale=" << hist_scale_name(h.scale());
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (h.bucket(i) == 0) continue;
      os << " [" << h.bucket_lower_bound(i) << "]=" << h.bucket(i);
    }
    if (h.overflow() != 0) os << " overflow=" << h.overflow();
    os << '\n';
  }
}

namespace {

// Locale-independent JSON number/string helpers.
void json_double(std::ostream& os, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void RegistrySnapshot::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << value;
  }
  os << (first ? "}" : "\n  }") << ",\n  \"scalars\": {";
  first = true;
  for (const auto& [name, s] : scalars) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": {\"count\": " << s.count << ", \"sum\": ";
    json_double(os, s.sum);
    os << ", \"mean\": ";
    json_double(os, s.mean());
    os << ", \"min\": ";
    json_double(os, s.min);
    os << ", \"max\": ";
    json_double(os, s.max);
    os << "}";
  }
  os << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": {\"scale\": \"" << hist_scale_name(h.scale)
       << "\", \"bucket_width\": " << h.bucket_width
       << ", \"total\": " << h.total << ", \"overflow\": " << h.overflow
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i)
      os << (i ? ", " : "") << h.buckets[i];
    os << "]}";
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

}  // namespace secmem
