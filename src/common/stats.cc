#include "common/stats.h"

#include <algorithm>
#include <iomanip>

namespace secmem {

void StatScalar::sample(double v) noexcept {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

StatHistogram::StatHistogram(std::size_t buckets, std::uint64_t bucket_width)
    : buckets_(buckets, 0), width_(bucket_width == 0 ? 1 : bucket_width) {}

void StatHistogram::sample(std::uint64_t v) noexcept {
  const std::size_t idx = static_cast<std::size_t>(v / width_);
  if (idx < buckets_.size())
    ++buckets_[idx];
  else
    ++overflow_;
  ++total_;
}

std::uint64_t StatRegistry::counter_value(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void StatRegistry::reset() {
  for (auto& [_, c] : counters_) c.reset();
  for (auto& [_, s] : scalars_) s.reset();
}

void StatRegistry::dump(std::ostream& os) const {
  for (const auto& [name, c] : counters_)
    os << std::left << std::setw(48) << name << c.value() << '\n';
  for (const auto& [name, s] : scalars_) {
    os << std::left << std::setw(48) << name << "mean=" << s.mean()
       << " min=" << s.min() << " max=" << s.max() << " n=" << s.count()
       << '\n';
  }
}

}  // namespace secmem
