#include "common/rng.h"

#include <bit>

namespace secmem {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Xoshiro256::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is the one forbidden state; splitmix64 output of any
  // seed cannot produce four zero words, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  // Debiased multiply-shift (Lemire). For simulation use the tiny residual
  // bias of a plain multiply would also be fine, but this is cheap.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace secmem
