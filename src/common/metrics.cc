#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <ostream>

namespace secmem {

const char* metric_name(MetricId id) noexcept {
  switch (id) {
    case MetricId::kReads: return "reads";
    case MetricId::kWrites: return "writes";
    case MetricId::kByteReads: return "byte_reads";
    case MetricId::kByteWrites: return "byte_writes";
    case MetricId::kCorrectedData: return "corrected_data";
    case MetricId::kCorrectedMacField: return "corrected_mac_field";
    case MetricId::kCorrectedWord: return "corrected_word";
    case MetricId::kIntegrityViolations: return "integrity_violations";
    case MetricId::kCounterTampers: return "counter_tampers";
    case MetricId::kGroupReencryptions: return "group_reencryptions";
    case MetricId::kMacEvaluations: return "mac_evaluations";
    case MetricId::kScrubbedBlocks: return "scrubbed_blocks";
    case MetricId::kScrubRepairs: return "scrub_repairs";
    case MetricId::kScrubUncorrectable: return "scrub_uncorrectable";
    case MetricId::kKeyRotations: return "key_rotations";
    case MetricId::kRestores: return "restores";
    case MetricId::kTreeCacheHits: return "tree_cache.hits";
    case MetricId::kTreeCacheMisses: return "tree_cache.misses";
    case MetricId::kTreeCacheFills: return "tree_cache.fills";
    case MetricId::kTreeCacheWritebacks: return "tree_cache.writebacks";
    case MetricId::kTreeCacheFlushes: return "tree_cache.flushes";
    case MetricId::kTreeCacheProbeHits: return "tree_cache.probe_hits";
    case MetricId::kTreeCacheProbeMisses: return "tree_cache.probe_misses";
    case MetricId::kSharedReads: return "shared_reads";
    case MetricId::kSharedReadDeclines: return "shared_read_declines";
    case MetricId::kRotateRollbackFailures:
      return "rotate_rollback_failures";
    case MetricId::kDeltaSaves: return "snapshot.delta.saves";
    case MetricId::kDeltaSaveFallbacks:
      return "snapshot.delta.save_fallbacks";
    case MetricId::kDeltaRestores: return "snapshot.delta.restores";
    case MetricId::kDeltaRejects: return "snapshot.delta.rejects";
    case MetricId::kCount_: break;
  }
  return "?";
}

const char* engine_hist_name(EngineHistId id) noexcept {
  switch (id) {
    case EngineHistId::kMacEvalsPerCorrection:
      return "mac_evals_per_correction";
    case EngineHistId::kReadLatencyNs: return "read_latency_ns";
    case EngineHistId::kWriteLatencyNs: return "write_latency_ns";
    case EngineHistId::kByteReadBytes: return "byte_read_bytes";
    case EngineHistId::kByteWriteBytes: return "byte_write_bytes";
    case EngineHistId::kReencryptedBlocks: return "reencrypted_blocks";
    case EngineHistId::kDeltaImageBytes: return "snapshot.delta.bytes";
    case EngineHistId::kDeltaDirtyGranules:
      return "snapshot.delta.dirty_granules";
    case EngineHistId::kCount_: break;
  }
  return "?";
}

std::size_t MetricsCell::log2_bucket(std::uint64_t v) noexcept {
  return std::min<std::size_t>(std::bit_width(v), kEngineHistBuckets - 1);
}

void MetricsCell::reset() noexcept {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& hist : hists_)
    for (auto& bucket : hist) bucket.store(0, std::memory_order_relaxed);
}

std::uint64_t MetricsSink::total(MetricId id) const noexcept {
  std::uint64_t sum = 0;
  for (const MetricsCell& cell : cells_) sum += cell.value(id);
  return sum;
}

void MetricsSink::reset() noexcept {
  for (MetricsCell& cell : cells_) cell.reset();
}

void MetricsSink::publish(StatRegistry& registry,
                          const std::string& prefix) const {
  std::vector<const MetricsCell*> cells;
  cells.reserve(cells_.size());
  for (const MetricsCell& cell : cells_) cells.push_back(&cell);
  publish_cells(cells, registry, prefix);
}

void publish_cells(const std::vector<const MetricsCell*>& cells,
                   StatRegistry& registry, const std::string& prefix) {
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    const MetricId id = static_cast<MetricId>(m);
    std::uint64_t sum = 0;
    for (const MetricsCell* cell : cells) sum += cell->value(id);
    registry.counter(metric_path({prefix, metric_name(id)})).inc(sum);
  }
  for (std::size_t h = 0; h < kEngineHistCount; ++h) {
    const EngineHistId id = static_cast<EngineHistId>(h);
    StatHistogram& hist =
        registry.histogram(metric_path({prefix, engine_hist_name(id)}),
                           kEngineHistBuckets, 1, HistScale::kLog2);
    for (std::size_t bucket = 0; bucket < kEngineHistBuckets; ++bucket) {
      std::uint64_t sum = 0;
      for (const MetricsCell* cell : cells)
        sum += cell->hist_bucket(id, bucket);
      hist.add_bucket_count(bucket, sum);
    }
  }
}

const char* trace_kind_name(TraceEvent::Kind kind) noexcept {
  switch (kind) {
    case TraceEvent::Kind::kRead: return "read";
    case TraceEvent::Kind::kWrite: return "write";
    case TraceEvent::Kind::kByteRead: return "byte-read";
    case TraceEvent::Kind::kByteWrite: return "byte-write";
    case TraceEvent::Kind::kScrub: return "scrub";
    case TraceEvent::Kind::kReencrypt: return "reencrypt";
    case TraceEvent::Kind::kKeyRotation: return "key-rotation";
    case TraceEvent::Kind::kRestore: return "restore";
  }
  return "?";
}

void TraceRing::record(TraceEvent::Kind kind, Status outcome,
                       std::uint64_t block, std::uint16_t shard) noexcept {
  const MutexLock lock(mu_);
  TraceEvent& slot = ring_[next_ % ring_.size()];
  slot.kind = kind;
  slot.outcome = outcome;
  slot.shard = shard;
  slot.block = block;
  slot.seq = next_;
  ++next_;
}

std::uint64_t TraceRing::recorded() const noexcept {
  const MutexLock lock(mu_);
  return next_;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  const MutexLock lock(mu_);
  std::vector<TraceEvent> events;
  const std::uint64_t retained =
      std::min<std::uint64_t>(next_, ring_.size());
  events.reserve(retained);
  for (std::uint64_t i = next_ - retained; i < next_; ++i)
    events.push_back(ring_[i % ring_.size()]);
  return events;
}

void TraceRing::clear() noexcept {
  const MutexLock lock(mu_);
  next_ = 0;
}

void TraceRing::dump(std::ostream& os) const {
  for (const TraceEvent& e : snapshot()) {
    os << e.seq << ' ' << trace_kind_name(e.kind) << " shard=" << e.shard
       << " block=" << e.block << ' ' << to_string(e.outcome) << '\n';
  }
}

}  // namespace secmem
