#include "common/bitops.h"

namespace secmem {

unsigned parity_bytes(std::span<const std::uint8_t> bytes) noexcept {
  // XOR-fold eight bytes at a time into one word, then a single parity64:
  // parity is XOR-linear, so folding first changes nothing but the cost.
  std::uint64_t acc = 0;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) acc ^= load_le64(bytes.data() + i);
  std::uint64_t tail = 0;
  for (unsigned shift = 0; i < bytes.size(); ++i, shift += 8)
    tail |= std::uint64_t{bytes[i]} << shift;
  return parity64(acc ^ tail);
}

bool get_bit(std::span<const std::uint8_t> bytes, std::size_t pos) noexcept {
  return (bytes[pos >> 3] >> (pos & 7)) & 1;
}

void set_bit(std::span<std::uint8_t> bytes, std::size_t pos,
             bool value) noexcept {
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (pos & 7));
  if (value)
    bytes[pos >> 3] |= mask;
  else
    bytes[pos >> 3] &= static_cast<std::uint8_t>(~mask);
}

void flip_bit(std::span<std::uint8_t> bytes, std::size_t pos) noexcept {
  bytes[pos >> 3] ^= static_cast<std::uint8_t>(1u << (pos & 7));
}

std::size_t popcount_bytes(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t n = 0;
  for (std::uint8_t b : bytes) n += static_cast<std::size_t>(std::popcount(b));
  return n;
}

std::uint64_t extract_field(std::span<const std::uint8_t> bytes,
                            std::size_t bit_pos, unsigned width) noexcept {
  if (width == 0) return 0;
  const std::size_t first = bit_pos >> 3;
  const unsigned shift = static_cast<unsigned>(bit_pos & 7);
  // The field spans at most 9 bytes (shift <= 7, width <= 64). Assemble the
  // low 8 covered bytes into one word; a 9th byte, if any, tops up the high
  // bits. Loads stay within the buffer: only bytes the field covers are read.
  const std::size_t span_bytes = ((bit_pos + width - 1) >> 3) - first + 1;
  const std::size_t lo_n = span_bytes < 8 ? span_bytes : 8;
  std::uint64_t word;
  if (first + 8 <= bytes.size()) {
    word = load_le64(bytes.data() + first);
  } else {
    word = 0;
    for (std::size_t i = 0; i < lo_n; ++i)
      word |= std::uint64_t{bytes[first + i]} << (8 * i);
  }
  std::uint64_t v = word >> shift;
  if (span_bytes == 9)
    v |= std::uint64_t{bytes[first + 8]} << (64u - shift);
  if (width < 64) v &= (std::uint64_t{1} << width) - 1;
  return v;
}

void insert_field(std::span<std::uint8_t> bytes, std::size_t bit_pos,
                  unsigned width, std::uint64_t field) noexcept {
  if (width == 0) return;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  field &= mask;
  const std::size_t first = bit_pos >> 3;
  const unsigned shift = static_cast<unsigned>(bit_pos & 7);
  const std::size_t span_bytes = ((bit_pos + width - 1) >> 3) - first + 1;
  const std::size_t lo_n = span_bytes < 8 ? span_bytes : 8;
  // Read-modify-write the low (up to 8) covered bytes as one word. When the
  // field runs into a 9th byte, `mask << shift` / `field << shift` truncate
  // to exactly the low-word portion; the spill is patched separately.
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < lo_n; ++i)
    word |= std::uint64_t{bytes[first + i]} << (8 * i);
  word = (word & ~(mask << shift)) | (field << shift);
  for (std::size_t i = 0; i < lo_n; ++i)
    bytes[first + i] = static_cast<std::uint8_t>(word >> (8 * i));
  if (span_bytes == 9) {
    const unsigned hi_bits = static_cast<unsigned>(shift + width - 64u);
    const std::uint8_t hi_mask =
        static_cast<std::uint8_t>((1u << hi_bits) - 1u);
    bytes[first + 8] = static_cast<std::uint8_t>(
        (bytes[first + 8] & ~hi_mask) |
        static_cast<std::uint8_t>(field >> (64u - shift)));
  }
}

}  // namespace secmem
