#include "common/bitops.h"

namespace secmem {

unsigned parity_bytes(std::span<const std::uint8_t> bytes) noexcept {
  unsigned p = 0;
  for (std::uint8_t b : bytes) p ^= static_cast<unsigned>(std::popcount(b) & 1);
  return p;
}

bool get_bit(std::span<const std::uint8_t> bytes, std::size_t pos) noexcept {
  return (bytes[pos >> 3] >> (pos & 7)) & 1;
}

void set_bit(std::span<std::uint8_t> bytes, std::size_t pos,
             bool value) noexcept {
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (pos & 7));
  if (value)
    bytes[pos >> 3] |= mask;
  else
    bytes[pos >> 3] &= static_cast<std::uint8_t>(~mask);
}

void flip_bit(std::span<std::uint8_t> bytes, std::size_t pos) noexcept {
  bytes[pos >> 3] ^= static_cast<std::uint8_t>(1u << (pos & 7));
}

std::size_t popcount_bytes(std::span<const std::uint8_t> bytes) noexcept {
  std::size_t n = 0;
  for (std::uint8_t b : bytes) n += static_cast<std::size_t>(std::popcount(b));
  return n;
}

std::uint64_t extract_field(std::span<const std::uint8_t> bytes,
                            std::size_t bit_pos, unsigned width) noexcept {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < width; ++i)
    if (get_bit(bytes, bit_pos + i)) v |= std::uint64_t{1} << i;
  return v;
}

void insert_field(std::span<std::uint8_t> bytes, std::size_t bit_pos,
                  unsigned width, std::uint64_t field) noexcept {
  for (unsigned i = 0; i < width; ++i)
    set_bit(bytes, bit_pos + i, (field >> i) & 1);
}

}  // namespace secmem
