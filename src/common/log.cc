#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace secmem {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[secmem %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace secmem
