// secmem::metrics — the hot-path half of the observability layer.
//
// StatRegistry (common/stats.h) is the named, exportable view; it is a
// plain map and must not be touched from concurrent hot paths. This file
// provides what the engines record into instead:
//
//  - MetricsCell: a cache-line-aligned block of relaxed atomic counters
//    and log2 histograms, indexed by fixed enums — one fetch_add per
//    event, no locks, no string hashing. Safe to write from the cell
//    owner's thread(s) and read from any other.
//  - MetricsSink: N cells (one per shard or per thread) aggregated on
//    read, so concurrent writers never share a cache line.
//  - TraceRing: a bounded ring of recent events (kind, block, shard,
//    outcome) for post-mortem debugging of integrity violations and
//    scrub findings. Mutex-guarded: tracing is an opt-in debug facility,
//    engines skip it entirely (one branch) when no ring is attached.
//
// publish() bridges the two worlds: it folds a sink's current totals into
// a StatRegistry under a dotted prefix, where they become part of the
// snapshot/diff/JSON pipeline.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace secmem {

/// Fixed ids for the engines' hot-path event counters. metric_name()
/// gives the dotted-path suffix each publishes under.
enum class MetricId : unsigned {
  kReads,                ///< verified block reads
  kWrites,               ///< encrypted block writes
  kByteReads,            ///< byte-level read() calls
  kByteWrites,           ///< byte-level write() calls
  kCorrectedData,        ///< reads healed by flip-and-check
  kCorrectedMacField,    ///< reads with a repaired MAC-lane bit
  kCorrectedWord,        ///< reads with SEC-DED-corrected words
  kIntegrityViolations,  ///< uncorrectable/tampered reads
  kCounterTampers,       ///< counter lines failing tree authentication
  kGroupReencryptions,   ///< delta-scheme group re-encryption events
  kMacEvaluations,       ///< flip-and-check MAC computations
  kScrubbedBlocks,       ///< blocks swept by scrub_block/scrub_all
  kScrubRepairs,         ///< scrubbed blocks healed in place
  kScrubUncorrectable,   ///< scrubbed blocks beyond repair
  kKeyRotations,         ///< successful master-key rotations
  kRestores,             ///< successful restores from a saved image
  kTreeCacheHits,        ///< tree walks truncated by the verified frontier
  kTreeCacheMisses,      ///< tree walks that reached the on-chip root
  kTreeCacheFills,       ///< nodes installed into the verified frontier
  kTreeCacheWritebacks,  ///< dirty nodes written back (evict or flush)
  kTreeCacheFlushes,     ///< explicit flush barriers
  kTreeCacheProbeHits,   ///< read-side probes answered by a resident line
  kTreeCacheProbeMisses, ///< read-side probes that walked to the root
  kSharedReads,          ///< reads served on the seqlock shared fast path
  kSharedReadDeclines,   ///< shared-path reads bounced to the writer lock
  kRotateRollbackFailures,  ///< failed rollback of a failed key rotation
  kDeltaSaves,           ///< incremental (COPY/ADD) snapshot images emitted
  kDeltaSaveFallbacks,   ///< save_delta calls that emitted a full image
  kDeltaRestores,        ///< delta images verified and applied in place
  kDeltaRejects,         ///< delta images rejected before any byte applied
  kCount_,               ///< sentinel
};
inline constexpr std::size_t kMetricCount =
    static_cast<std::size_t>(MetricId::kCount_);

const char* metric_name(MetricId id) noexcept;

/// Fixed ids for the engines' hot-path histograms (all log2-bucketed).
enum class EngineHistId : unsigned {
  kMacEvalsPerCorrection,  ///< flip-and-check cost per corrective read
  kReadLatencyNs,          ///< verified-read wall time (config.time_ops)
  kWriteLatencyNs,         ///< block-write wall time (config.time_ops)
  kByteReadBytes,          ///< byte-level read() request size
  kByteWriteBytes,         ///< byte-level write() request size
  kReencryptedBlocks,      ///< blocks rewritten per group re-encryption
  kDeltaImageBytes,        ///< bytes per emitted delta image
  kDeltaDirtyGranules,     ///< dirty granules encoded per delta save
  kCount_,                 ///< sentinel
};
inline constexpr std::size_t kEngineHistCount =
    static_cast<std::size_t>(EngineHistId::kCount_);
/// log2 buckets: [0], [1], [2,3), ... — 40 buckets cover up to ~2^39.
inline constexpr std::size_t kEngineHistBuckets = 40;

const char* engine_hist_name(EngineHistId id) noexcept;

/// One writer's slice of the metrics plane. All mutation is relaxed
/// atomic; readers may observe the counters mid-operation (monotonic but
/// not a cross-counter snapshot), which is exactly the contract a stats
/// poller wants on a hot path.
class MetricsCell {
 public:
  void add(MetricId id, std::uint64_t n = 1) noexcept {
    counters_[static_cast<std::size_t>(id)].fetch_add(
        n, std::memory_order_relaxed);
  }
  void sample(EngineHistId hist, std::uint64_t v) noexcept {
    hists_[static_cast<std::size_t>(hist)][log2_bucket(v)].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::uint64_t value(MetricId id) const noexcept {
    return counters_[static_cast<std::size_t>(id)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t hist_bucket(EngineHistId hist,
                            std::size_t bucket) const noexcept {
    return hists_[static_cast<std::size_t>(hist)][bucket].load(
        std::memory_order_relaxed);
  }

  /// Zero every counter and bucket (relaxed stores; callers reset while
  /// quiescent or accept losing concurrent increments).
  void reset() noexcept;

  static std::size_t log2_bucket(std::uint64_t v) noexcept;

 private:
  // 64-byte alignment keeps cells in a MetricsSink from false-sharing
  // their first (hottest) counters across writer threads.
  alignas(64) std::array<std::atomic<std::uint64_t>, kMetricCount>
      counters_{};
  std::array<std::array<std::atomic<std::uint64_t>, kEngineHistBuckets>,
             kEngineHistCount>
      hists_{};
};

/// A fixed set of MetricsCells — per shard or per worker thread —
/// aggregated on read. Writers call sink.cell(i).add(...); readers call
/// total()/publish() without synchronizing with writers.
class MetricsSink {
 public:
  explicit MetricsSink(std::size_t cells = 1) : cells_(cells ? cells : 1) {}

  std::size_t cell_count() const noexcept { return cells_.size(); }
  MetricsCell& cell(std::size_t i) { return cells_[i]; }
  const MetricsCell& cell(std::size_t i) const { return cells_[i]; }

  std::uint64_t total(MetricId id) const noexcept;
  void reset() noexcept;

  /// Fold current totals into `registry` under `prefix` (e.g. "engine" →
  /// "engine.reads"). Adds to whatever the registry already holds, so
  /// publish into a fresh registry (or diff snapshots) for absolute
  /// values.
  void publish(StatRegistry& registry, const std::string& prefix) const;

 private:
  std::vector<MetricsCell> cells_;
};

/// Publish an arbitrary group of cells (e.g. one per shard, owned by the
/// shards themselves) into a registry — the aggregation primitive behind
/// both MetricsSink::publish and ShardedSecureMemory.
void publish_cells(const std::vector<const MetricsCell*>& cells,
                   StatRegistry& registry, const std::string& prefix);

/// One entry of the post-mortem trace.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kRead,
    kWrite,
    kByteRead,
    kByteWrite,
    kScrub,
    kReencrypt,
    kKeyRotation,
    kRestore,
  };
  Kind kind = Kind::kRead;
  Status outcome = Status::kOk;
  std::uint16_t shard = 0;   ///< owning shard (0 for unsharded engines)
  std::uint64_t block = 0;   ///< shard-local block index
  std::uint64_t seq = 0;     ///< global record order, assigned by the ring
};

const char* trace_kind_name(TraceEvent::Kind kind) noexcept;

/// Bounded ring buffer of recent TraceEvents; the newest `capacity`
/// events win. Thread-safe via a mutex (the ring state is
/// SECMEM_GUARDED_BY it, so lock-free access is a clang build error) —
/// attach one only when debugging (engines test a single pointer when no
/// ring is attached).
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
    ring_.resize(capacity_);
  }

  void record(TraceEvent::Kind kind, Status outcome, std::uint64_t block,
              std::uint16_t shard = 0) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  /// Total events ever recorded (>= size of snapshot()).
  std::uint64_t recorded() const noexcept;
  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;
  void clear() noexcept;
  /// One line per retained event, oldest first — the post-mortem dump
  /// hook for integrity violations and scrub reports.
  void dump(std::ostream& os) const;

 private:
  const std::size_t capacity_;  ///< immutable — readable without the lock
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ SECMEM_GUARDED_BY(mu_);
  std::uint64_t next_ SECMEM_GUARDED_BY(mu_) = 0;  ///< total recorded
};

}  // namespace secmem
