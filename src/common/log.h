// Minimal leveled logging. Simulation hot paths never log; this exists for
// examples and debugging. Level is process-wide but explicitly settable.
#pragma once

#include <sstream>
#include <string>

namespace secmem {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set/get the global minimum level that is emitted.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line to stderr if `level` >= the global threshold.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << args);
  log_line(level, oss.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace secmem
