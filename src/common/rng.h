// Deterministic pseudo-random number generation for simulation and test
// reproducibility. We deliberately avoid std::mt19937 / std::random_device
// in simulator code paths: every experiment in the paper reproduction must
// replay bit-identically given the same seed.
#pragma once

#include <cstdint>

namespace secmem {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  /// Re-initialize state from a 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed) noexcept;

  /// Next 64 uniformly random bits.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli draw with probability p.
  bool chance(double p) noexcept { return next_double() < p; }

 private:
  std::uint64_t s_[4]{};
};

/// splitmix64 — used to expand seeds; also a fine standalone mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace secmem
