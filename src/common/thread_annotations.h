// Clang Thread Safety Analysis vocabulary for the secmem engines.
//
// The concurrency facades (engine/concurrent.h, engine/sharded_memory.h)
// and the observability plane coordinate through mutexes whose discipline
// was previously enforced only by review and TSan. This header makes the
// discipline *compiler-checked*: under clang with -Wthread-safety every
// access to a SECMEM_GUARDED_BY member outside its lock is a build error
// (scripts/ci.sh builds src/ with -Wthread-safety -Werror when clang is
// available); under other compilers the macros expand to nothing and the
// annotated wrappers cost exactly what std::mutex costs.
//
// Policy (enforced by tools/secmem-lint, rule `raw-mutex`): no naked
// std::mutex / std::shared_mutex anywhere in src/ outside this header.
// Every lock is a secmem::Mutex or secmem::SharedMutex so it carries a
// capability the analysis can track. To annotate a new lock:
//
//   Mutex mu_;
//   Thing state_ SECMEM_GUARDED_BY(mu_);     // data under the lock
//   void poke() { MutexLock lock(mu_); state_.poke(); }  // checked
//
// Functions that are lock-free by *contract* (relaxed-atomic metrics
// reads) or that acquire a runtime-selected set of locks (ordered
// multi-shard acquisition, see engine/lock_table.h) are outside the
// static analysis' power; mark them SECMEM_NO_THREAD_SAFETY_ANALYSIS
// with a comment saying why, and keep them covered by the TSan preset.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SECMEM_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef SECMEM_THREAD_ANNOTATION__
#define SECMEM_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// A type that is a lockable capability ("mutex", "shared_mutex", ...).
#define SECMEM_CAPABILITY(x) SECMEM_THREAD_ANNOTATION__(capability(x))

/// An RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SECMEM_SCOPED_CAPABILITY SECMEM_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define SECMEM_GUARDED_BY(x) SECMEM_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define SECMEM_PT_GUARDED_BY(x) SECMEM_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock avoidance documentation).
#define SECMEM_ACQUIRED_BEFORE(...) \
  SECMEM_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define SECMEM_ACQUIRED_AFTER(...) \
  SECMEM_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function must be called with the capability held (exclusively /
/// shared) and does not release it.
#define SECMEM_REQUIRES(...) \
  SECMEM_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define SECMEM_REQUIRES_SHARED(...) \
  SECMEM_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the capability.
#define SECMEM_ACQUIRE(...) \
  SECMEM_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define SECMEM_ACQUIRE_SHARED(...) \
  SECMEM_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define SECMEM_RELEASE(...) \
  SECMEM_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define SECMEM_RELEASE_SHARED(...) \
  SECMEM_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define SECMEM_TRY_ACQUIRE(b, ...) \
  SECMEM_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))
#define SECMEM_TRY_ACQUIRE_SHARED(b, ...) \
  SECMEM_THREAD_ANNOTATION__(try_acquire_shared_capability(b, __VA_ARGS__))

/// The function must be called WITHOUT the capability held.
#define SECMEM_EXCLUDES(...) \
  SECMEM_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define SECMEM_RETURN_CAPABILITY(x) \
  SECMEM_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking is beyond static analysis
/// (runtime-indexed lock sets, contract-level lock-freedom). Always pair
/// with a comment explaining why, and keep TSan coverage.
#define SECMEM_NO_THREAD_SAFETY_ANALYSIS \
  SECMEM_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace secmem {

/// Capability-annotated exclusive mutex. Drop-in for std::mutex (also
/// satisfies BasicLockable, so std::unique_lock<Mutex> works where a
/// movable guard is needed — those acquisitions are invisible to the
/// analysis; see SECMEM_NO_THREAD_SAFETY_ANALYSIS above).
class SECMEM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SECMEM_ACQUIRE() { mu_.lock(); }
  void unlock() SECMEM_RELEASE() { mu_.unlock(); }
  bool try_lock() SECMEM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Capability-annotated reader/writer mutex.
class SECMEM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() SECMEM_ACQUIRE() { mu_.lock(); }
  void unlock() SECMEM_RELEASE() { mu_.unlock(); }
  bool try_lock() SECMEM_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void lock_shared() SECMEM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SECMEM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() SECMEM_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex — the checked way to take a lock.
class SECMEM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SECMEM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SECMEM_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class SECMEM_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) SECMEM_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() SECMEM_RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock over a SharedMutex.
class SECMEM_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) SECMEM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() SECMEM_RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Capability-annotated seqlock: a reader/writer mutex plus a published
/// generation counter. This is the read-mostly tier of the lock
/// vocabulary (engine/sharded_memory.h): readers take the shared side
/// (so every data access is lock-synchronized — no racy textbook-seqlock
/// reads, TSan- and standards-clean), writers take the exclusive side,
/// and the generation gives lock-free *observers* a way to detect
/// writer activity without touching the mutex at all:
///
///  - generation() is odd while a writer holds the lock (bumped to odd
///    on acquire, even on release), so write_in_progress(g) is `g & 1`.
///  - Two equal, even generations bracket a span with no completed or
///    in-flight write — the optimistic-snapshot validation the
///    cross-shard read path uses: snapshot each shard's generation,
///    read shard by shard under short shared locks, and accept iff
///    every generation is unchanged (retry otherwise).
///
/// Satisfies BasicLockable on its exclusive side, so the ordered
/// multi-lock machinery (std::unique_lock via engine/lock_table.h)
/// bumps generations exactly like a SeqWriteLock does.
class SECMEM_CAPABILITY("seqlock") SeqLock {
 public:
  SeqLock() = default;
  SeqLock(const SeqLock&) = delete;
  SeqLock& operator=(const SeqLock&) = delete;

  void lock() SECMEM_ACQUIRE() {
    mu_.lock();
    bump();  // odd: write in progress
  }
  void unlock() SECMEM_RELEASE() {
    bump();  // even: quiescent
    mu_.unlock();
  }
  bool try_lock() SECMEM_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    bump();
    return true;
  }
  void lock_shared() SECMEM_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() SECMEM_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool try_lock_shared() SECMEM_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

  /// Lock-free probe of writer activity; pairs with the release store in
  /// bump() so a reader that sees generation G also sees every write the
  /// G-bumping writer made before publishing G.
  std::uint64_t generation() const noexcept {
    return gen_.load(std::memory_order_acquire);
  }
  static bool write_in_progress(std::uint64_t generation) noexcept {
    return (generation & 1) != 0;
  }

 private:
  void bump() noexcept {
    // Only ever called with the exclusive side held, so the load cannot
    // race another bump; the release publishes the writer's mutations.
    gen_.store(gen_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }

  std::shared_mutex mu_;
  std::atomic<std::uint64_t> gen_{0};
};

/// RAII shared (reader) lock over a SeqLock — the checked fast path for
/// read-mostly data.
class SECMEM_SCOPED_CAPABILITY SeqReadLock {
 public:
  explicit SeqReadLock(SeqLock& mu) SECMEM_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~SeqReadLock() SECMEM_RELEASE() { mu_.unlock_shared(); }
  SeqReadLock(const SeqReadLock&) = delete;
  SeqReadLock& operator=(const SeqReadLock&) = delete;

 private:
  SeqLock& mu_;
};

/// RAII exclusive (writer) lock over a SeqLock; bumps the generation on
/// both edges via SeqLock::lock()/unlock().
class SECMEM_SCOPED_CAPABILITY SeqWriteLock {
 public:
  explicit SeqWriteLock(SeqLock& mu) SECMEM_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SeqWriteLock() SECMEM_RELEASE() { mu_.unlock(); }
  SeqWriteLock(const SeqWriteLock&) = delete;
  SeqWriteLock& operator=(const SeqWriteLock&) = delete;

 private:
  SeqLock& mu_;
};

}  // namespace secmem
