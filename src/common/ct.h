// Constant-time comparisons for secret-dependent data.
//
// Every MAC/tag/verified-content comparison on a read path must go
// through these helpers (policy: SECURITY.md "Constant-time comparison";
// enforcement: tools/secmem-lint rule `ct-compare` bans memcmp/std::equal
// in src/{engine,tree,crypto,ecc}). The early-exit of memcmp leaks the
// index of the first differing byte through timing; against an attacker
// who can retry tag guesses (bus tampering in this threat model) that is
// a byte-at-a-time forgery oracle — the SUPERCOP/BearSSL discipline is to
// accumulate the whole difference and branch exactly once, at the end.
//
// These helpers return the same accept/reject verdict as memcmp == 0 /
// operator== on every input (tests/test_ct.cc proves it exhaustively for
// small widths and differentially under fuzz); only the time profile
// changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace secmem {

/// Constant-time equality of two n-byte buffers. Time depends only on n,
/// never on the contents or the position of a mismatch.
[[nodiscard]] inline bool ct_equal(const void* a, const void* b,
                                   std::size_t n) noexcept {
  const auto* x = static_cast<const unsigned char*>(a);
  const auto* y = static_cast<const unsigned char*>(b);
  unsigned char acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= static_cast<unsigned char>(x[i] ^ y[i]);
  return acc == 0;
}

/// Constant-time equality of two spans. A length mismatch returns false
/// immediately — lengths are public (block geometry), contents are not.
[[nodiscard]] inline bool ct_equal(std::span<const std::uint8_t> a,
                                   std::span<const std::uint8_t> b) noexcept {
  if (a.size() != b.size()) return false;
  return ct_equal(a.data(), b.data(), a.size());
}

/// Constant-time equality of two 64-bit words (MAC tags, child-MAC slots).
/// `(d | -d) >> 63` is 1 iff d != 0: either d's top bit is set, or d is a
/// small nonzero value whose two's complement negation sets the top bit.
[[nodiscard]] inline bool ct_equal_u64(std::uint64_t a,
                                       std::uint64_t b) noexcept {
  const std::uint64_t d = a ^ b;
  return ((d | (std::uint64_t{0} - d)) >> 63) == 0;
}

}  // namespace secmem
