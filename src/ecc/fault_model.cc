#include "ecc/fault_model.h"

#include <algorithm>

#include "common/bitops.h"

namespace secmem {

const char* fault_pattern_name(FaultPattern pattern) noexcept {
  switch (pattern) {
    case FaultPattern::kSingleBitData: return "single-bit (data)";
    case FaultPattern::kDoubleBitSameWord: return "double-bit, same word";
    case FaultPattern::kDoubleBitCrossWord: return "double-bit, cross word";
    case FaultPattern::kTripleBitData: return "triple-bit (data)";
    case FaultPattern::kManyBitSingleWord: return "many-bit, single word";
    case FaultPattern::kSingleBitLane: return "single-bit (ECC/MAC lane)";
    case FaultPattern::kDoubleBitLane: return "double-bit (ECC/MAC lane)";
    case FaultPattern::kMixedDataAndLane: return "1 data bit + 1 lane bit";
  }
  return "?";
}

Fault FaultInjector::sample(FaultPattern pattern) {
  Fault fault{pattern, {}};
  auto push_unique = [&fault](std::uint16_t bit) {
    if (std::find(fault.bits.begin(), fault.bits.end(), bit) ==
        fault.bits.end()) {
      fault.bits.push_back(bit);
      return true;
    }
    return false;
  };

  switch (pattern) {
    case FaultPattern::kSingleBitData:
      fault.bits.push_back(random_data_bit());
      break;
    case FaultPattern::kDoubleBitSameWord: {
      const auto word = static_cast<std::uint16_t>(rng_.next_below(8));
      while (fault.bits.size() < 2)
        push_unique(static_cast<std::uint16_t>(64 * word +
                                               rng_.next_below(64)));
      break;
    }
    case FaultPattern::kDoubleBitCrossWord: {
      const auto w1 = static_cast<std::uint16_t>(rng_.next_below(8));
      auto w2 = static_cast<std::uint16_t>(rng_.next_below(8));
      while (w2 == w1) w2 = static_cast<std::uint16_t>(rng_.next_below(8));
      fault.bits.push_back(
          static_cast<std::uint16_t>(64 * w1 + rng_.next_below(64)));
      fault.bits.push_back(
          static_cast<std::uint16_t>(64 * w2 + rng_.next_below(64)));
      break;
    }
    case FaultPattern::kTripleBitData:
      while (fault.bits.size() < 3) push_unique(random_data_bit());
      break;
    case FaultPattern::kManyBitSingleWord: {
      const auto word = static_cast<std::uint16_t>(rng_.next_below(8));
      const std::size_t n = 3 + rng_.next_below(6);  // 3..8 flips
      while (fault.bits.size() < n)
        push_unique(static_cast<std::uint16_t>(64 * word +
                                               rng_.next_below(64)));
      break;
    }
    case FaultPattern::kSingleBitLane:
      fault.bits.push_back(random_lane_bit());
      break;
    case FaultPattern::kDoubleBitLane:
      while (fault.bits.size() < 2) push_unique(random_lane_bit());
      break;
    case FaultPattern::kMixedDataAndLane:
      fault.bits.push_back(random_data_bit());
      fault.bits.push_back(random_lane_bit());
      break;
  }
  return fault;
}

void FaultInjector::apply(const Fault& fault, DataBlock& data, EccLane& lane) {
  for (const std::uint16_t bit : fault.bits) {
    if (bit < kDataBits)
      flip_bit(data, bit);
    else
      flip_bit(lane, bit - kDataBits);
  }
}

}  // namespace secmem
