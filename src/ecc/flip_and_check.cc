#include "ecc/flip_and_check.h"

#include <array>
#include <limits>

#include "common/bitops.h"
#include "crypto/gf64.h"

namespace secmem {

std::uint64_t FlipAndCheck::worst_case_checks(unsigned errors) noexcept {
  constexpr std::uint64_t kBits = kBlockBytes * 8;  // 512
  if (errors > kBits) return 0;  // no way to place more flips than bits
  // C(n,k) == C(n,n-k); the smaller side keeps the loop short.
  if (errors > kBits - errors) errors = static_cast<unsigned>(kBits) - errors;
  switch (errors) {
    case 0: return 1;
    case 1: return kBits;                      // 512
    case 2: return kBits * (kBits - 1) / 2;    // 130,816
    default: {
      // C(512, errors) — provided for analysis, not used operationally.
      // The running product c_{i+1} = c_i * (512-i) / (i+1) is itself a
      // binomial coefficient (division exact), but it exceeds 64 bits
      // from errors = 10 on: widen the multiply and saturate.
      constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
      unsigned __int128 c = 1;
      for (unsigned i = 0; i < errors; ++i) {
        c = c * (kBits - i) / (i + 1);
        if (c > kMax) return kMax;
      }
      return static_cast<std::uint64_t>(c);
    }
  }
}

CorrectionResult FlipAndCheck::correct(const DataBlock& block,
                                       const Verifier& verify) const {
  CorrectionResult result{};
  result.data = block;
  result.mac_evaluations = 0;

  auto check = [&](const DataBlock& candidate) {
    ++result.mac_evaluations;
    return verify(candidate);
  };

  if (check(block)) {
    result.status = CorrectionStatus::kClean;
    result.modeled_cycles = result.mac_evaluations * config_.cycles_per_mac;
    return result;
  }

  constexpr std::size_t kBits = kBlockBytes * 8;
  DataBlock candidate = block;

  if (config_.max_errors >= 1) {
    for (std::size_t i = 0; i < kBits; ++i) {
      flip_bit(candidate, i);
      if (check(candidate)) {
        result.status = CorrectionStatus::kCorrectedOne;
        result.data = candidate;
        result.flipped_bits[0] = static_cast<int>(i);
        result.modeled_cycles =
            result.mac_evaluations * config_.cycles_per_mac;
        return result;
      }
      flip_bit(candidate, i);  // restore
    }
  }

  if (config_.max_errors >= 2) {
    for (std::size_t i = 0; i + 1 < kBits; ++i) {
      flip_bit(candidate, i);
      for (std::size_t j = i + 1; j < kBits; ++j) {
        flip_bit(candidate, j);
        if (check(candidate)) {
          result.status = CorrectionStatus::kCorrectedTwo;
          result.data = candidate;
          result.flipped_bits[0] = static_cast<int>(i);
          result.flipped_bits[1] = static_cast<int>(j);
          result.modeled_cycles =
              result.mac_evaluations * config_.cycles_per_mac;
          return result;
        }
        flip_bit(candidate, j);
      }
      flip_bit(candidate, i);
    }
  }

  result.status = CorrectionStatus::kUncorrectable;
  result.modeled_cycles = result.mac_evaluations * config_.cycles_per_mac;
  return result;
}

CorrectionResult FlipAndCheck::correct_incremental(const DataBlock& block,
                                                   const CwMac& mac,
                                                   std::uint64_t pad,
                                                   std::uint64_t tag) const {
  CorrectionResult result{};
  result.data = block;
  result.mac_evaluations = 0;

  // One full hash of the received block; every candidate after this is
  // H ^ delta. Blinding with the pad and truncating commute with the
  // XOR, so the masked compare below is exactly CwMac::verify_with_pad.
  const std::uint64_t hash = mac.block_polyhash(block);
  const std::uint64_t target = tag & kMacMask;
  auto matches = [&](std::uint64_t h) {
    ++result.mac_evaluations;
    return ((h ^ pad) & kMacMask) == target;
  };

  auto finish = [&](CorrectionStatus status) {
    result.status = status;
    result.modeled_cycles = result.mac_evaluations * config_.cycles_per_mac;
    return result;
  };

  if (matches(hash)) return finish(CorrectionStatus::kClean);

  constexpr std::size_t kBits = kBlockBytes * 8;

  // delta[i]: full-hash change from flipping global bit i. Bit i lives in
  // little-endian word i/64, bit i%64, whose hash coefficient is
  // h^(8 - i/64); walking bit k -> k+1 within a word multiplies by x.
  std::array<std::uint64_t, kBits> delta;
  for (std::size_t word = 0; word < CwMac::kBlockWords; ++word) {
    std::uint64_t d = mac.word_coefficient(word);
    for (std::size_t k = 0; k < 64; ++k) {
      delta[word * 64 + k] = d;
      d = gf64_mul_x(d);
    }
  }

  if (config_.max_errors >= 1) {
    for (std::size_t i = 0; i < kBits; ++i) {
      if (matches(hash ^ delta[i])) {
        flip_bit(result.data, i);
        result.flipped_bits[0] = static_cast<int>(i);
        return finish(CorrectionStatus::kCorrectedOne);
      }
    }
  }

  if (config_.max_errors >= 2) {
    for (std::size_t i = 0; i + 1 < kBits; ++i) {
      const std::uint64_t hi = hash ^ delta[i];
      for (std::size_t j = i + 1; j < kBits; ++j) {
        if (matches(hi ^ delta[j])) {
          flip_bit(result.data, i);
          flip_bit(result.data, j);
          result.flipped_bits[0] = static_cast<int>(i);
          result.flipped_bits[1] = static_cast<int>(j);
          return finish(CorrectionStatus::kCorrectedTwo);
        }
      }
    }
  }

  return finish(CorrectionStatus::kUncorrectable);
}

}  // namespace secmem
