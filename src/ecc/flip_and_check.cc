#include "ecc/flip_and_check.h"

#include "common/bitops.h"

namespace secmem {

std::uint64_t FlipAndCheck::worst_case_checks(unsigned errors) noexcept {
  constexpr std::uint64_t kBits = kBlockBytes * 8;  // 512
  switch (errors) {
    case 0: return 1;
    case 1: return kBits;                      // 512
    case 2: return kBits * (kBits - 1) / 2;    // 130,816
    default: {
      // C(512, errors) — provided for analysis, not used operationally.
      std::uint64_t c = 1;
      for (unsigned i = 0; i < errors; ++i) c = c * (kBits - i) / (i + 1);
      return c;
    }
  }
}

CorrectionResult FlipAndCheck::correct(const DataBlock& block,
                                       const Verifier& verify) const {
  CorrectionResult result{};
  result.data = block;
  result.mac_evaluations = 0;

  auto check = [&](const DataBlock& candidate) {
    ++result.mac_evaluations;
    return verify(candidate);
  };

  if (check(block)) {
    result.status = CorrectionStatus::kClean;
    result.modeled_cycles = result.mac_evaluations * config_.cycles_per_mac;
    return result;
  }

  constexpr std::size_t kBits = kBlockBytes * 8;
  DataBlock candidate = block;

  if (config_.max_errors >= 1) {
    for (std::size_t i = 0; i < kBits; ++i) {
      flip_bit(candidate, i);
      if (check(candidate)) {
        result.status = CorrectionStatus::kCorrectedOne;
        result.data = candidate;
        result.flipped_bits[0] = static_cast<int>(i);
        result.modeled_cycles =
            result.mac_evaluations * config_.cycles_per_mac;
        return result;
      }
      flip_bit(candidate, i);  // restore
    }
  }

  if (config_.max_errors >= 2) {
    for (std::size_t i = 0; i + 1 < kBits; ++i) {
      flip_bit(candidate, i);
      for (std::size_t j = i + 1; j < kBits; ++j) {
        flip_bit(candidate, j);
        if (check(candidate)) {
          result.status = CorrectionStatus::kCorrectedTwo;
          result.data = candidate;
          result.flipped_bits[0] = static_cast<int>(i);
          result.flipped_bits[1] = static_cast<int>(j);
          result.modeled_cycles =
              result.mac_evaluations * config_.cycles_per_mac;
          return result;
        }
        flip_bit(candidate, j);
      }
      flip_bit(candidate, i);
    }
  }

  result.status = CorrectionStatus::kUncorrectable;
  result.modeled_cycles = result.mac_evaluations * config_.cycles_per_mac;
  return result;
}

}  // namespace secmem
