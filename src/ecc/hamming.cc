#include "ecc/hamming.h"

#include <cassert>

#include "common/bitops.h"

namespace secmem {

namespace {
// Even parity over a 128-bit codeword.
unsigned parity128(HammingSecDed::Codeword cw) noexcept {
  return parity64(static_cast<std::uint64_t>(cw)) ^
         parity64(static_cast<std::uint64_t>(cw >> 64));
}

// Smallest r with 2^r - r - 1 >= k.
unsigned parity_count_for(unsigned k) {
  unsigned r = 1;
  while (((1u << r) - r - 1) < k) ++r;
  return r;
}
}  // namespace

HammingSecDed::HammingSecDed(unsigned data_bits)
    : k_(data_bits), r_(parity_count_for(data_bits)), n_(k_ + r_) {
  assert(data_bits >= 1 && data_bits <= 64);
  assert(n_ <= 127);  // codeword uses 1-indexed positions in a uint128
  assert(r_ <= syndrome_masks_.size());
  // Precompute, per syndrome bit, which data bits feed it — the hot
  // encode/decode paths then reduce to r_ parity64 calls instead of two
  // bit-by-bit passes over a 128-bit codeword.
  unsigned di = 0;
  for (unsigned pos = 1; pos <= n_; ++pos) {
    if (is_pow2(pos)) continue;
    for (unsigned j = 0; j < r_; ++j)
      if ((pos >> j) & 1) syndrome_masks_[j] |= std::uint64_t{1} << di;
    ++di;
  }
}

std::uint64_t HammingSecDed::fast_syndrome(
    std::uint64_t data, std::uint64_t hamming_parity) const noexcept {
  std::uint64_t syn = 0;
  for (unsigned j = 0; j < r_; ++j)
    syn |= std::uint64_t{parity64(data & syndrome_masks_[j])} << j;
  return syn ^ hamming_parity;
}

HammingSecDed::Codeword HammingSecDed::build_codeword(
    std::uint64_t data, std::uint64_t hamming_parity) const noexcept {
  Codeword cw = 0;
  unsigned di = 0, pi = 0;
  for (unsigned pos = 1; pos <= n_; ++pos) {
    const bool is_parity = is_pow2(pos);
    const bool bit = is_parity ? ((hamming_parity >> pi++) & 1)
                               : ((data >> di++) & 1);
    if (bit) cw |= Codeword{1} << pos;
  }
  return cw;
}

std::uint64_t HammingSecDed::syndrome_of(Codeword codeword) const noexcept {
  // Syndrome bit j is the parity of all positions whose bit j is set.
  std::uint64_t syn = 0;
  for (unsigned pos = 1; pos <= n_; ++pos)
    if ((codeword >> pos) & 1) syn ^= pos;
  return syn;
}

std::uint64_t HammingSecDed::data_of(Codeword codeword) const noexcept {
  std::uint64_t data = 0;
  unsigned di = 0;
  for (unsigned pos = 1; pos <= n_; ++pos) {
    if (is_pow2(pos)) continue;
    if ((codeword >> pos) & 1) data |= std::uint64_t{1} << di;
    ++di;
  }
  return data;
}

std::uint64_t HammingSecDed::parity_field_of(
    Codeword codeword) const noexcept {
  std::uint64_t parity = 0;
  unsigned pi = 0;
  for (unsigned pos = 1; pos <= n_; ++pos) {
    if (!is_pow2(pos)) continue;
    if ((codeword >> pos) & 1) parity |= std::uint64_t{1} << pi;
    ++pi;
  }
  return parity;
}

std::uint64_t HammingSecDed::encode(std::uint64_t data) const noexcept {
  // A valid codeword has syndrome 0, so the required parity bits are
  // exactly the data's syndrome contributions; the overall bit covers
  // data and Hamming parity together.
  const std::uint64_t parity = fast_syndrome(data, 0);
  const std::uint64_t overall = parity64(data) ^ parity64(parity);
  return parity | (overall << r_);
}

HammingSecDed::Decoded HammingSecDed::decode(
    std::uint64_t data, std::uint64_t parity) const noexcept {
  const std::uint64_t hamming_parity = parity & ((std::uint64_t{1} << r_) - 1);
  const unsigned stored_overall = (parity >> r_) & 1;

  // Mask-based syndrome/overall: identical values to walking the built
  // codeword, at a handful of parity64s. The no-error exit below is the
  // clean-read hot path; the codeword is only materialized to repair.
  const std::uint64_t syn = fast_syndrome(data, hamming_parity);
  const unsigned computed_overall = parity64(data) ^ parity64(hamming_parity);
  const bool overall_mismatch = (computed_overall != stored_overall);

  if (syn == 0 && !overall_mismatch) return {Status::kOk, data, parity};

  if (syn == 0 && overall_mismatch) {
    // The overall parity bit itself flipped; data and Hamming bits intact.
    const std::uint64_t fixed_parity =
        hamming_parity | (std::uint64_t{computed_overall} << r_);
    return {Status::kCorrectedSingle, data, fixed_parity};
  }

  if (overall_mismatch) {
    // Odd number of flips with nonzero syndrome => single-bit error at
    // position `syn` (could be a data or a Hamming-parity position).
    if (syn >= 1 && syn <= n_) {
      Codeword cw = build_codeword(data, hamming_parity);
      cw ^= Codeword{1} << syn;
      const std::uint64_t fixed_data = data_of(cw);
      const std::uint64_t fixed_ham = parity_field_of(cw);
      const std::uint64_t fixed_parity =
          fixed_ham | (std::uint64_t{parity128(cw)} << r_);
      return {Status::kCorrectedSingle, fixed_data, fixed_parity};
    }
    // Syndrome points outside the codeword: at least 3 bits flipped.
    // SEC-DED cannot distinguish this from a single-bit error in general;
    // flag it as a detected (uncorrectable) multi-bit error.
    return {Status::kDetectedDouble, data, parity};
  }

  // Nonzero syndrome with matching overall parity: even number of flips.
  return {Status::kDetectedDouble, data, parity};
}

}  // namespace secmem
