// Generic SEC-DED (single-error-correct, double-error-detect) Hamming
// codec over data words of up to 64 bits.
//
// A standard Hamming code with r parity bits protects up to 2^r - r - 1
// data bits and corrects any single-bit error; an extra overall-parity bit
// extends it to detect (without miscorrecting) any double-bit error.
// Instances used in this project:
//   - HammingSecDed(64): 8 parity bits per 8-byte word — classic DIMM ECC
//     ("(72,64)" code, 12.5% overhead), see secded72.h.
//   - HammingSecDed(56): 7 parity bits protecting a 56-bit MAC tag —
//     exactly the "7-bit parity over the MAC" of paper §3.3.
#pragma once

#include <array>
#include <cstdint>

namespace secmem {

class HammingSecDed {
 public:
  /// Internal codeword representation: positions are 1-indexed, so a
  /// (72,64) codeword needs bit positions up to 71 — wider than uint64.
  using Codeword = unsigned __int128;

  /// `data_bits` in [1, 64].
  explicit HammingSecDed(unsigned data_bits);

  unsigned data_bits() const noexcept { return k_; }
  /// Hamming parity bits + 1 overall parity bit.
  unsigned parity_bits() const noexcept { return r_ + 1; }
  unsigned codeword_bits() const noexcept { return k_ + r_ + 1; }

  /// Parity field for `data` (low `parity_bits()` bits used):
  /// bits [0, r) are the Hamming parity bits, bit r is overall parity.
  std::uint64_t encode(std::uint64_t data) const noexcept;

  enum class Status {
    kOk,               ///< no error
    kCorrectedSingle,  ///< one flipped bit (data or parity), repaired
    kDetectedDouble,   ///< two flipped bits, not correctable
  };

  struct [[nodiscard]] Decoded {
    Status status;
    std::uint64_t data;    ///< corrected data (valid unless kDetectedDouble)
    std::uint64_t parity;  ///< corrected parity field
  };

  /// Check/correct a (data, parity) pair as read from storage.
  Decoded decode(std::uint64_t data, std::uint64_t parity) const noexcept;

 private:
  /// Syndrome of a (data, hamming_parity) pair without materializing the
  /// codeword: syndrome bit j is the parity of the data bits whose
  /// codeword position has bit j set (precomputed masks) XOR parity bit j
  /// (which sits at position 2^j). This is the whole decode for the
  /// no-error case — the loop-based codeword machinery below only runs
  /// when something actually flipped.
  std::uint64_t fast_syndrome(std::uint64_t data,
                              std::uint64_t hamming_parity) const noexcept;
  // Codeword layout: positions 1..n (1-indexed); parity bits sit at
  // power-of-two positions, data bits fill the rest in increasing order.
  Codeword build_codeword(std::uint64_t data,
                          std::uint64_t hamming_parity) const noexcept;
  std::uint64_t syndrome_of(Codeword codeword) const noexcept;
  std::uint64_t data_of(Codeword codeword) const noexcept;
  std::uint64_t parity_field_of(Codeword codeword) const noexcept;

  unsigned k_;  // data bits
  unsigned r_;  // Hamming parity bits (excluding overall parity)
  unsigned n_;  // k_ + r_ (codeword bits, excluding overall parity)
  /// syndrome_masks_[j]: data bits whose codeword position has bit j set
  /// (r_ <= 7 for data widths up to 64).
  std::array<std::uint64_t, 7> syndrome_masks_{};
};

}  // namespace secmem
