// Brute-force "flip-and-check" MAC-based error correction (paper §3.4).
//
// A MAC detects that *some* bits flipped but not which; to correct, the
// controller flips candidate bit(s) and re-verifies the MAC:
//   - single-bit errors: <= 512 trials over a 64-byte block
//   - double-bit errors: <= C(512,2) = 130,816 trials
// The MAC field itself is protected by its own 7-bit Hamming code
// (mac_ecc.h), so only data-bit flips need the brute-force search.
//
// Two engines are provided:
//   - correct() is generic over a verification predicate, so it works
//     against CwMac or toy checkers in tests. Every trial re-hashes the
//     whole 64-byte candidate.
//   - correct_incremental() exploits that the Carter-Wegman hash is
//     GF(2)-linear in the message: flipping bit k of 64-bit word j shifts
//     the full hash by exactly x^k * h^(8-j). The 512 per-bit hash deltas
//     are walked in O(1) each (multiply-by-x), and every candidate trial
//     is then one XOR and one masked compare instead of a fresh 8-word
//     polynomial hash. Results (status, repaired bits, trial counts) are
//     bit-identical to the generic path by linearity.
//
// Both report the number of MAC evaluations performed and a modeled
// hardware cycle cost (one GF-multiply-based MAC evaluates in ~1 cycle,
// paper §3.4).
#pragma once

#include <cstdint>
#include <functional>

#include "crypto/ctr_keystream.h"
#include "crypto/cw_mac.h"

namespace secmem {

/// Outcome of a flip-and-check correction attempt.
enum class CorrectionStatus : std::uint8_t {
  kClean,          ///< MAC verified without any flips
  kCorrectedOne,   ///< one data bit repaired
  kCorrectedTwo,   ///< two data bits repaired
  kUncorrectable,  ///< no 0/1/2-bit variant verified
};

struct [[nodiscard]] CorrectionResult {
  CorrectionStatus status;
  DataBlock data;                 ///< repaired block (valid unless kUncorrectable)
  std::uint64_t mac_evaluations;  ///< verification attempts performed
  std::uint64_t modeled_cycles;   ///< evaluations x cycles-per-MAC
  int flipped_bits[2] = {-1, -1}; ///< bit positions repaired, -1 if unused
};

class FlipAndCheck {
 public:
  /// `verify(block)` returns true iff the block's MAC checks out.
  using Verifier = std::function<bool(const DataBlock&)>;

  struct Config {
    /// Highest number of simultaneous bit errors to attempt (0..2).
    /// The paper stops at 2: beyond that the worst case explodes to
    /// millions of cycles (§3.4 item 1).
    unsigned max_errors = 2;
    /// Modeled cycles per MAC evaluation; state-of-the-art Galois-field
    /// MACs compute in a single cycle in hardware (paper §3.4).
    unsigned cycles_per_mac = 1;
  };

  FlipAndCheck() noexcept : config_(Config{}) {}
  explicit FlipAndCheck(const Config& config) noexcept : config_(config) {}

  /// Try to make `block` verify by flipping up to max_errors bits.
  CorrectionResult correct(const DataBlock& block, const Verifier& verify) const;

  /// Incremental variant for the CwMac construction. `pad` is
  /// mac.pad_for(addr, counter) and `tag` the stored (56-bit) tag; a
  /// candidate verifies iff (hash ^ pad) & kMacMask == tag & kMacMask,
  /// the same predicate CwMac::verify_with_pad applies. Candidate order,
  /// result fields, and evaluation counts match correct() exactly — only
  /// the per-trial cost drops from a full block hash to O(1).
  CorrectionResult correct_incremental(const DataBlock& block,
                                       const CwMac& mac, std::uint64_t pad,
                                       std::uint64_t tag) const;

  /// Worst-case MAC evaluations for a given error count over 512 bits:
  /// C(512, errors), saturating to UINT64_MAX when the true value
  /// exceeds 64 bits (first at errors = 10) and 0 for errors > 512.
  static std::uint64_t worst_case_checks(unsigned errors) noexcept;

 private:
  Config config_;
};

}  // namespace secmem
