// The paper's MAC-in-ECC lane layout (§3.3, Figure 2).
//
// The 64 bits an ECC DIMM reserves per 64-byte block are repurposed as:
//
//   bits [ 0..55]  56-bit Carter-Wegman MAC of the ciphertext
//   bits [56..62]  7-bit SEC-DED Hamming parity protecting the MAC itself
//   bit  [63]      1 parity bit over the ciphertext, for DRAM scrubbing
//
// The MAC gives authentication plus *unbounded* error detection on the
// data; the 7 Hamming bits let the controller repair single-bit flips in
// the MAC without touching the integrity tree; the scrub bit lets scrubbing
// firmware sweep for single-bit data errors without recomputing MACs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/ctr_keystream.h"
#include "crypto/cw_mac.h"
#include "ecc/hamming.h"
#include "ecc/secded72.h"  // EccLane

namespace secmem {

/// Bit layout constants for the MAC-ECC lane.
inline constexpr unsigned kMacFieldPos = 0;
inline constexpr unsigned kMacParityPos = 56;
inline constexpr unsigned kMacParityBits = 7;
inline constexpr unsigned kScrubBitPos = 63;

/// Pack/unpack and check the combined MAC + parity + scrub-bit lane.
class MacEccCodec {
 public:
  MacEccCodec() : mac_code_(kMacBits) {}

  /// Build the 64-bit lane for a ciphertext block and its 56-bit MAC.
  std::uint64_t pack(std::uint64_t mac, const DataBlock& ciphertext)
      const noexcept;

  /// Lane as the 8 ECC bytes stored on the DIMM.
  EccLane pack_lane(std::uint64_t mac, const DataBlock& ciphertext)
      const noexcept;

  /// Batch lane packing for group-granular writes: packs
  /// `(macs[i], ciphertexts[i])` into `out[i]`. Each lane goes through the
  /// same precomputed syndrome-mask Hamming encode and XOR-folded scrub
  /// parity as `pack_lane`, so the output is bit-identical to per-block
  /// calls; the batch shape lets re-encryption hand a whole 64-block group
  /// to the codec at once. Spans must be the same length.
  void pack_lane_batch(std::span<const std::uint64_t> macs,
                       std::span<const DataBlock> ciphertexts,
                       std::span<EccLane> out) const noexcept;

  enum class MacStatus : std::uint8_t {
    kOk,               ///< MAC field clean
    kCorrectedSingle,  ///< single-bit flip in MAC/parity repaired
    kUncorrectable,    ///< >=2 bit flips within the MAC field
  };

  struct [[nodiscard]] Unpacked {
    std::uint64_t mac;    ///< corrected 56-bit MAC
    MacStatus status;     ///< health of the MAC field itself
    bool scrub_bit;       ///< stored ciphertext-parity bit (as read)
  };

  /// Extract and self-check the MAC using its 7-bit Hamming code.
  Unpacked unpack(std::uint64_t lane) const noexcept;
  Unpacked unpack_lane(const EccLane& lane) const noexcept;

  /// Batch unpack: `out[i] = unpack_lane(lanes[i])`, bit-identical to the
  /// scalar call. Spans must be the same length.
  void unpack_lane_batch(std::span<const EccLane> lanes,
                         std::span<Unpacked> out) const noexcept;

  /// Scrubbing check (paper §3.3 "Enabling Efficient Scrubbing"): compare
  /// the stored ciphertext-parity bit against the ciphertext. A mismatch
  /// means an odd number of bit flips in (ciphertext + scrub bit); no MAC
  /// computation required. Returns true when the parity is consistent.
  bool scrub_ok(std::uint64_t lane, const DataBlock& ciphertext)
      const noexcept;

 private:
  HammingSecDed mac_code_;
};

}  // namespace secmem
