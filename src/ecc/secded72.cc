#include "ecc/secded72.h"

#include "common/bitops.h"

namespace secmem {

EccLane Secded72::encode(const DataBlock& block) const noexcept {
  EccLane lane{};
  for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
    const std::uint64_t word = load_le64(block.data() + 8 * w);
    lane[w] = static_cast<std::uint8_t>(code_.encode(word));
  }
  return lane;
}

void Secded72::encode_batch(std::span<const DataBlock> blocks,
                            std::span<EccLane> out) const noexcept {
  const std::size_t n = blocks.size() < out.size() ? blocks.size() : out.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = encode(blocks[i]);
}

Secded72::BlockResult Secded72::decode(const DataBlock& block,
                                       const EccLane& ecc) const noexcept {
  BlockResult result;
  result.data = block;
  result.ecc = ecc;
  for (std::size_t w = 0; w < kWordsPerBlock; ++w) {
    const std::uint64_t word = load_le64(block.data() + 8 * w);
    const auto decoded = code_.decode(word, ecc[w]);
    switch (decoded.status) {
      case HammingSecDed::Status::kOk:
        result.words[w] = WordStatus::kOk;
        break;
      case HammingSecDed::Status::kCorrectedSingle:
        result.words[w] = WordStatus::kCorrectedSingle;
        store_le64(result.data.data() + 8 * w, decoded.data);
        result.ecc[w] = static_cast<std::uint8_t>(decoded.parity);
        result.any_corrected = true;
        break;
      case HammingSecDed::Status::kDetectedDouble:
        result.words[w] = WordStatus::kDetectedDouble;
        result.any_uncorrectable = true;
        break;
    }
  }
  return result;
}

}  // namespace secmem
