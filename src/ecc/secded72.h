// Standard DIMM ECC: an independent (72,64) SEC-DED code per 8-byte word
// (paper §3.1). A 64-byte block carries 8 words and therefore 8 ECC bytes
// — the 64-bit "ECC lane" that travels on the extra chips/bus lines of an
// ECC DIMM. This is the *conventional* scheme the paper's MAC-based layout
// replaces; we implement it fully so Figure 3's coverage comparison runs
// against the real thing.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/ctr_keystream.h"  // DataBlock, kBlockBytes
#include "ecc/hamming.h"

namespace secmem {

/// The 8 ECC bytes stored alongside one 64-byte block on an ECC DIMM.
using EccLane = std::array<std::uint8_t, 8>;
inline constexpr std::size_t kEccLaneBytes = 8;
inline constexpr std::size_t kWordsPerBlock = kBlockBytes / 8;

/// Conventional per-word SEC-DED over a 64-byte block.
class Secded72 {
 public:
  Secded72() : code_(64) {}

  /// ECC lane for a block: one SEC-DED parity byte per 8-byte word.
  EccLane encode(const DataBlock& block) const noexcept;

  /// Batch entry point for group-granular writes (re-encryption, batched
  /// stores): encodes `blocks[i]` into `out[i]`. Every word goes through
  /// the same precomputed syndrome-mask path as `encode`, so results are
  /// bit-identical to calling `encode` per block; batching exists so
  /// callers can express a whole block-group in one call and the hot loop
  /// stays free of per-block virtual/setup overhead. Spans must be the
  /// same length.
  void encode_batch(std::span<const DataBlock> blocks,
                    std::span<EccLane> out) const noexcept;

  enum class WordStatus : std::uint8_t {
    kOk,
    kCorrectedSingle,
    kDetectedDouble,  ///< uncorrectable within this word
  };

  struct [[nodiscard]] BlockResult {
    DataBlock data;                                 ///< corrected data
    EccLane ecc;                                    ///< corrected lane
    std::array<WordStatus, kWordsPerBlock> words;   ///< per-word outcome
    bool any_corrected = false;
    bool any_uncorrectable = false;
  };

  /// Check/correct all 8 words of a block against its ECC lane.
  BlockResult decode(const DataBlock& block, const EccLane& ecc) const noexcept;

 private:
  HammingSecDed code_;
};

}  // namespace secmem
