#include "ecc/mac_ecc.h"

#include "common/bitops.h"

namespace secmem {

std::uint64_t MacEccCodec::pack(std::uint64_t mac,
                                const DataBlock& ciphertext) const noexcept {
  const std::uint64_t m = mac & kMacMask;
  const std::uint64_t parity = mac_code_.encode(m);  // 7 bits (6 + overall)
  const std::uint64_t scrub = parity_bytes(ciphertext);
  std::uint64_t lane = 0;
  lane = insert_bits(lane, kMacFieldPos, kMacBits, m);
  lane = insert_bits(lane, kMacParityPos, kMacParityBits, parity);
  lane = insert_bits(lane, kScrubBitPos, 1, scrub);
  return lane;
}

EccLane MacEccCodec::pack_lane(std::uint64_t mac,
                               const DataBlock& ciphertext) const noexcept {
  EccLane bytes{};
  store_le64(bytes.data(), pack(mac, ciphertext));
  return bytes;
}

void MacEccCodec::pack_lane_batch(std::span<const std::uint64_t> macs,
                                  std::span<const DataBlock> ciphertexts,
                                  std::span<EccLane> out) const noexcept {
  std::size_t n = macs.size() < ciphertexts.size() ? macs.size()
                                                   : ciphertexts.size();
  if (out.size() < n) n = out.size();
  for (std::size_t i = 0; i < n; ++i)
    out[i] = pack_lane(macs[i], ciphertexts[i]);
}

MacEccCodec::Unpacked MacEccCodec::unpack(std::uint64_t lane) const noexcept {
  const std::uint64_t mac = extract_bits(lane, kMacFieldPos, kMacBits);
  const std::uint64_t parity =
      extract_bits(lane, kMacParityPos, kMacParityBits);
  const bool scrub = extract_bits(lane, kScrubBitPos, 1) != 0;

  const auto decoded = mac_code_.decode(mac, parity);
  switch (decoded.status) {
    case HammingSecDed::Status::kOk:
      return {decoded.data, MacStatus::kOk, scrub};
    case HammingSecDed::Status::kCorrectedSingle:
      return {decoded.data, MacStatus::kCorrectedSingle, scrub};
    case HammingSecDed::Status::kDetectedDouble:
      return {mac, MacStatus::kUncorrectable, scrub};
  }
  return {mac, MacStatus::kUncorrectable, scrub};
}

MacEccCodec::Unpacked MacEccCodec::unpack_lane(
    const EccLane& lane) const noexcept {
  return unpack(load_le64(lane.data()));
}

void MacEccCodec::unpack_lane_batch(std::span<const EccLane> lanes,
                                    std::span<Unpacked> out) const noexcept {
  const std::size_t n = lanes.size() < out.size() ? lanes.size() : out.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = unpack_lane(lanes[i]);
}

bool MacEccCodec::scrub_ok(std::uint64_t lane,
                           const DataBlock& ciphertext) const noexcept {
  const bool stored = extract_bits(lane, kScrubBitPos, 1) != 0;
  return stored == (parity_bytes(ciphertext) != 0);
}

}  // namespace secmem
