// DRAM fault injection for the Figure 3 coverage comparison and for
// failure-injection tests.
//
// Faults target a (64-byte data block, 8-byte ECC lane) pair — 576 bit
// positions total, matching a x72 ECC DIMM line. Patterns mirror the
// scenarios in the paper's Figure 3: single bit, double bits within one
// 8-byte word, double bits across words, many-bit word faults (e.g. a
// failed chip), and faults landing in the ECC/MAC lane itself.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "crypto/ctr_keystream.h"
#include "ecc/secded72.h"

namespace secmem {

/// Fault pattern families compared in paper Figure 3.
enum class FaultPattern : std::uint8_t {
  kSingleBitData,        ///< 1 flip in the data block
  kDoubleBitSameWord,    ///< 2 flips within one 8-byte data word
  kDoubleBitCrossWord,   ///< 2 flips in two different data words
  kTripleBitData,        ///< 3 flips anywhere in the data block
  kManyBitSingleWord,    ///< 3..8 flips confined to one data word
  kSingleBitLane,        ///< 1 flip in the ECC/MAC lane
  kDoubleBitLane,        ///< 2 flips in the ECC/MAC lane
  kMixedDataAndLane,     ///< 1 flip in data + 1 flip in lane
};

const char* fault_pattern_name(FaultPattern pattern) noexcept;

/// A concrete injected fault: list of flipped bit positions.
/// Positions [0, 512) index the data block; [512, 576) index the lane.
struct Fault {
  FaultPattern pattern;
  std::vector<std::uint16_t> bits;
};

inline constexpr std::size_t kDataBits = kBlockBytes * 8;        // 512
inline constexpr std::size_t kLaneBits = kEccLaneBytes * 8;      // 64
inline constexpr std::size_t kLineBits = kDataBits + kLaneBits;  // 576

/// Deterministically samples faults of a given pattern.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Draw a random fault of the given pattern.
  Fault sample(FaultPattern pattern);

  /// Apply a fault to a (data, lane) pair in place.
  static void apply(const Fault& fault, DataBlock& data, EccLane& lane);

 private:
  std::uint16_t random_data_bit() {
    return static_cast<std::uint16_t>(rng_.next_below(kDataBits));
  }
  std::uint16_t random_lane_bit() {
    return static_cast<std::uint16_t>(kDataBits + rng_.next_below(kLaneBits));
  }

  Xoshiro256 rng_;
};

}  // namespace secmem
