// Generic set-associative, write-back, LRU cache model.
//
// This is a *tag* cache: it tracks presence and dirtiness of lines, not
// their contents (functional data lives in the owning component). The same
// class models the L1/L2/L3 data caches of the simulated CPU and the 32KB
// 8-way counter/MAC metadata cache of the memory-encryption engine
// (paper Table 1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace secmem {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  unsigned ways = 8;
  std::size_t line_bytes = 64;
};

/// Result of a fill: the line that had to be evicted, if any.
struct Eviction {
  std::uint64_t line_addr;  ///< byte address of the evicted line
  bool dirty;               ///< true if it must be written back
};

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheConfig& config);

  /// True if the line containing `addr` is present; updates LRU on hit.
  bool lookup(std::uint64_t addr) noexcept;

  /// Probe without disturbing LRU state.
  bool contains(std::uint64_t addr) const noexcept;

  /// Insert the line containing `addr` (must not already be present —
  /// call lookup first). Returns the victim if a valid line was evicted.
  std::optional<Eviction> fill(std::uint64_t addr, bool dirty = false);

  /// Mark an already-present line dirty. Returns false if absent.
  bool mark_dirty(std::uint64_t addr) noexcept;

  /// Remove the line containing `addr` if present; reports its dirtiness.
  std::optional<Eviction> invalidate(std::uint64_t addr) noexcept;

  /// Drop every line; dirty victims are returned in unspecified order.
  std::vector<Eviction> flush();

  std::size_t line_bytes() const noexcept { return line_bytes_; }
  std::size_t num_sets() const noexcept { return sets_; }
  unsigned ways() const noexcept { return ways_; }
  std::size_t occupied_lines() const noexcept;

  std::uint64_t line_address(std::uint64_t addr) const noexcept {
    return addr & ~static_cast<std::uint64_t>(line_bytes_ - 1);
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // higher = more recently used
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(std::uint64_t addr) const noexcept;
  std::uint64_t tag_of(std::uint64_t addr) const noexcept;
  Line* find(std::uint64_t addr) noexcept;
  const Line* find(std::uint64_t addr) const noexcept;

  std::size_t line_bytes_;
  std::size_t sets_;
  unsigned ways_;
  std::uint64_t next_lru_ = 1;
  std::vector<Line> lines_;  // sets_ x ways_, row-major
};

}  // namespace secmem
