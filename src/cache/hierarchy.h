// Three-level cache hierarchy model: per-core L1 and L2, shared L3
// (paper Table 1: L1 32KB/8-way, L2 256KB/8-way, L3 10MB/16-way shared).
//
// Write-back, write-allocate at every level; non-inclusive (a line may
// live at any subset of levels). Dirty evictions cascade toward memory;
// dirty L3 victims surface to the caller as DRAM writebacks — these are
// exactly the events that drive counter increments and re-encryption in
// the memory-encryption engine.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "common/stats.h"

namespace secmem {

struct HierarchyConfig {
  unsigned cores = 4;
  CacheConfig l1{32 * 1024, 8, 64};
  CacheConfig l2{256 * 1024, 8, 64};
  CacheConfig l3{10 * 1024 * 1024, 16, 64};
  unsigned l1_latency = 4;    ///< cycles, load-to-use on L1 hit
  unsigned l2_latency = 12;   ///< cycles on L2 hit
  unsigned l3_latency = 38;   ///< cycles on L3 hit
};

/// Which level served an access.
enum class ServedBy : std::uint8_t { kL1, kL2, kL3, kMemory };

struct AccessOutcome {
  ServedBy served_by;
  unsigned hit_latency;  ///< cycles to the serving level (DRAM time excluded)
  /// Dirty 64-byte lines evicted from L3 by this access; the caller must
  /// write them back to (encrypted) DRAM.
  std::vector<std::uint64_t> writebacks;
};

class CacheHierarchy {
 public:
  CacheHierarchy(const HierarchyConfig& config, StatRegistry& stats);

  /// Simulate a load/store by core `core` to byte address `addr`.
  AccessOutcome access(unsigned core, std::uint64_t addr, bool is_write);

  /// Write back every dirty line (end-of-run accounting).
  std::vector<std::uint64_t> flush_all();

  const HierarchyConfig& config() const noexcept { return config_; }

 private:
  /// Insert a line into L2/L3, cascading dirty victims; appends resulting
  /// DRAM writebacks to `writebacks`.
  void fill_l2(unsigned core, std::uint64_t line, bool dirty,
               std::vector<std::uint64_t>& writebacks);
  void fill_l3(std::uint64_t line, bool dirty,
               std::vector<std::uint64_t>& writebacks);

  HierarchyConfig config_;
  std::vector<SetAssocCache> l1_;  // one per core
  std::vector<SetAssocCache> l2_;  // one per core
  SetAssocCache l3_;
  // Cached registry counters (stable references, see StatRegistry) —
  // the map lookups happen once at construction, not per access.
  struct LevelCounters {
    StatCounter& hits;
    StatCounter& misses;
  };
  LevelCounters l1_stats_;
  LevelCounters l2_stats_;
  LevelCounters l3_stats_;
};

}  // namespace secmem
