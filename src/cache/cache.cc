#include "cache/cache.h"

#include <cassert>

#include "common/bitops.h"

namespace secmem {

SetAssocCache::SetAssocCache(const CacheConfig& config)
    : line_bytes_(config.line_bytes),
      sets_(config.size_bytes / (config.line_bytes * config.ways)),
      ways_(config.ways) {
  assert(is_pow2(line_bytes_));
  assert(sets_ >= 1);
  assert(is_pow2(sets_));
  lines_.resize(sets_ * ways_);
}

std::size_t SetAssocCache::set_index(std::uint64_t addr) const noexcept {
  return (addr / line_bytes_) & (sets_ - 1);
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const noexcept {
  return (addr / line_bytes_) / sets_;
}

SetAssocCache::Line* SetAssocCache::find(std::uint64_t addr) noexcept {
  const std::size_t base = set_index(addr) * ways_;
  const std::uint64_t tag = tag_of(addr);
  for (unsigned w = 0; w < ways_; ++w) {
    Line& line = lines_[base + w];
    if (line.valid && line.tag == tag) return &line;
  }
  return nullptr;
}

const SetAssocCache::Line* SetAssocCache::find(
    std::uint64_t addr) const noexcept {
  return const_cast<SetAssocCache*>(this)->find(addr);
}

bool SetAssocCache::lookup(std::uint64_t addr) noexcept {
  Line* line = find(addr);
  if (line == nullptr) return false;
  line->lru = next_lru_++;
  return true;
}

bool SetAssocCache::contains(std::uint64_t addr) const noexcept {
  return find(addr) != nullptr;
}

std::optional<Eviction> SetAssocCache::fill(std::uint64_t addr, bool dirty) {
  assert(!contains(addr));
  const std::size_t set = set_index(addr);
  const std::size_t base = set * ways_;
  Line* victim = &lines_[base];
  for (unsigned w = 0; w < ways_; ++w) {
    Line& line = lines_[base + w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }

  std::optional<Eviction> evicted;
  if (victim->valid) {
    const std::uint64_t victim_addr =
        (victim->tag * sets_ + set) * line_bytes_;
    evicted = Eviction{victim_addr, victim->dirty};
  }
  victim->tag = tag_of(addr);
  victim->valid = true;
  victim->dirty = dirty;
  victim->lru = next_lru_++;
  return evicted;
}

bool SetAssocCache::mark_dirty(std::uint64_t addr) noexcept {
  Line* line = find(addr);
  if (line == nullptr) return false;
  line->dirty = true;
  line->lru = next_lru_++;
  return true;
}

std::optional<Eviction> SetAssocCache::invalidate(std::uint64_t addr) noexcept {
  Line* line = find(addr);
  if (line == nullptr) return std::nullopt;
  line->valid = false;
  return Eviction{line_address(addr), line->dirty};
}

std::vector<Eviction> SetAssocCache::flush() {
  std::vector<Eviction> dirty_lines;
  for (std::size_t set = 0; set < sets_; ++set) {
    for (unsigned w = 0; w < ways_; ++w) {
      Line& line = lines_[set * ways_ + w];
      if (!line.valid) continue;
      if (line.dirty) {
        dirty_lines.push_back(
            Eviction{(line.tag * sets_ + set) * line_bytes_, true});
      }
      line.valid = false;
    }
  }
  return dirty_lines;
}

std::size_t SetAssocCache::occupied_lines() const noexcept {
  std::size_t n = 0;
  for (const Line& line : lines_)
    if (line.valid) ++n;
  return n;
}

}  // namespace secmem
