#include "cache/hierarchy.h"

namespace secmem {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config,
                               StatRegistry& stats)
    : config_(config),
      l3_(config.l3),
      l1_stats_{stats.counter("cache.l1.hits"),
                stats.counter("cache.l1.misses")},
      l2_stats_{stats.counter("cache.l2.hits"),
                stats.counter("cache.l2.misses")},
      l3_stats_{stats.counter("cache.l3.hits"),
                stats.counter("cache.l3.misses")} {
  l1_.reserve(config.cores);
  l2_.reserve(config.cores);
  for (unsigned c = 0; c < config.cores; ++c) {
    l1_.emplace_back(config.l1);
    l2_.emplace_back(config.l2);
  }
}

void CacheHierarchy::fill_l3(std::uint64_t line, bool dirty,
                             std::vector<std::uint64_t>& writebacks) {
  if (l3_.lookup(line)) {
    if (dirty) l3_.mark_dirty(line);
    return;
  }
  if (auto victim = l3_.fill(line, dirty); victim && victim->dirty)
    writebacks.push_back(victim->line_addr);
}

void CacheHierarchy::fill_l2(unsigned core, std::uint64_t line, bool dirty,
                             std::vector<std::uint64_t>& writebacks) {
  SetAssocCache& l2 = l2_[core];
  if (l2.lookup(line)) {
    if (dirty) l2.mark_dirty(line);
    return;
  }
  if (auto victim = l2.fill(line, dirty); victim && victim->dirty)
    fill_l3(victim->line_addr, /*dirty=*/true, writebacks);
}

AccessOutcome CacheHierarchy::access(unsigned core, std::uint64_t addr,
                                     bool is_write) {
  AccessOutcome outcome;
  SetAssocCache& l1 = l1_[core];
  SetAssocCache& l2 = l2_[core];
  const std::uint64_t line = l1.line_address(addr);

  if (l1.lookup(line)) {
    if (is_write) l1.mark_dirty(line);
    outcome.served_by = ServedBy::kL1;
    outcome.hit_latency = config_.l1_latency;
    l1_stats_.hits.inc();
    return outcome;
  }
  l1_stats_.misses.inc();

  // Allocate into L1 regardless of where the line is found below.
  auto allocate_l1 = [&](bool dirty) {
    if (auto victim = l1.fill(line, dirty); victim && victim->dirty)
      fill_l2(core, victim->line_addr, /*dirty=*/true, outcome.writebacks);
  };

  if (l2.lookup(line)) {
    // Line moves up to L1; its dirtiness migrates with it.
    const auto removed = l2.invalidate(line);
    allocate_l1(is_write || (removed && removed->dirty));
    outcome.served_by = ServedBy::kL2;
    outcome.hit_latency = config_.l2_latency;
    l2_stats_.hits.inc();
    return outcome;
  }
  l2_stats_.misses.inc();

  if (l3_.lookup(line)) {
    allocate_l1(is_write);
    outcome.served_by = ServedBy::kL3;
    outcome.hit_latency = config_.l3_latency;
    l3_stats_.hits.inc();
    return outcome;
  }
  l3_stats_.misses.inc();

  // Miss everywhere: line comes from DRAM. Fill L3 (clean copy) and L1.
  fill_l3(line, /*dirty=*/false, outcome.writebacks);
  allocate_l1(is_write);
  outcome.served_by = ServedBy::kMemory;
  outcome.hit_latency = config_.l3_latency;  // time spent probing the chain
  return outcome;
}

std::vector<std::uint64_t> CacheHierarchy::flush_all() {
  std::vector<std::uint64_t> writebacks;
  for (unsigned c = 0; c < config_.cores; ++c) {
    for (const Eviction& ev : l1_[c].flush())
      if (ev.dirty) fill_l2(c, ev.line_addr, true, writebacks);
    for (const Eviction& ev : l2_[c].flush())
      if (ev.dirty) fill_l3(ev.line_addr, true, writebacks);
  }
  for (const Eviction& ev : l3_.flush())
    if (ev.dirty) writebacks.push_back(ev.line_addr);
  return writebacks;
}

}  // namespace secmem
