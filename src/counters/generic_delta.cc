#include "counters/generic_delta.h"

#include <algorithm>
#include <cassert>

#include "common/bitops.h"

namespace secmem {

unsigned GenericDeltaCounters::group_blocks_for(unsigned delta_bits) {
  const unsigned fit = (512 - 56) / delta_bits;
  return std::min(fit, 64u);
}

GenericDeltaCounters::GenericDeltaCounters(BlockIndex num_blocks,
                                           unsigned delta_bits,
                                           DeltaConfig config)
    : num_blocks_(num_blocks),
      delta_bits_(delta_bits),
      delta_max_((std::uint64_t{1} << delta_bits) - 1),
      group_blocks_(group_blocks_for(delta_bits)),
      config_(config) {
  assert(delta_bits >= 2 && delta_bits <= 16);
  groups_.resize((num_blocks + group_blocks_ - 1) / group_blocks_);
  for (Group& g : groups_) g.delta.assign(group_blocks_, 0);
}

std::string GenericDeltaCounters::name() const {
  return "delta-" + std::to_string(delta_bits_) + "bit-g" +
         std::to_string(group_blocks_);
}

std::uint64_t GenericDeltaCounters::read_counter(BlockIndex block) const {
  const Group& g = groups_.at(block / group_blocks_);
  return g.ref + g.delta[block % group_blocks_];
}

WriteOutcome GenericDeltaCounters::on_write(BlockIndex block) {
  const std::uint64_t group_idx = block / group_blocks_;
  Group& g = groups_.at(group_idx);
  std::uint32_t& d = g.delta[block % group_blocks_];

  if (d < delta_max_) {
    ++d;
    const std::uint64_t counter = g.ref + d;
    if (config_.enable_reset && d != 0) {
      const bool all_equal = std::all_of(
          g.delta.begin(), g.delta.end(),
          [v = d](std::uint32_t x) { return x == v; });
      if (all_equal) {
        g.ref += d;
        std::fill(g.delta.begin(), g.delta.end(), 0);
        ++resets_;
        return {counter, CounterEvent::kReset, group_idx};
      }
    }
    return {counter, CounterEvent::kIncrement, group_idx};
  }

  if (config_.enable_reencode) {
    const std::uint32_t dmin =
        *std::min_element(g.delta.begin(), g.delta.end());
    if (dmin > 0) {
      for (std::uint32_t& x : g.delta) x -= dmin;
      g.ref += dmin;
      ++reencodes_;
      ++d;
      return {g.ref + d, CounterEvent::kReencode, group_idx};
    }
  }

  g.ref += delta_max_ + 1;
  std::fill(g.delta.begin(), g.delta.end(), 0);
  ++reencryptions_;
  return {g.ref, CounterEvent::kReencrypt, group_idx};
}

void GenericDeltaCounters::serialize_line(
    std::uint64_t line, std::span<std::uint8_t, 64> out) const {
  const Group& g = groups_.at(line);
  std::fill(out.begin(), out.end(), 0);
  std::span<std::uint8_t> bytes(out);
  insert_field(bytes, 0, 56, g.ref);
  for (unsigned i = 0; i < group_blocks_; ++i)
    insert_field(bytes, 56 + i * delta_bits_, delta_bits_, g.delta[i]);
}


void GenericDeltaCounters::deserialize_line(
    std::uint64_t line, std::span<const std::uint8_t, 64> in) {
  Group& g = groups_.at(line);
  std::span<const std::uint8_t> bytes(in);
  g.ref = extract_field(bytes, 0, 56);
  for (unsigned i = 0; i < group_blocks_; ++i)
    g.delta[i] = static_cast<std::uint32_t>(
        extract_field(bytes, 56 + i * delta_bits_, delta_bits_));
}

}  // namespace secmem
