#include "counters/counter_scheme.h"

#include "counters/delta_counter.h"
#include "counters/dual_length_delta.h"
#include "counters/monolithic.h"
#include "counters/split_counter.h"

namespace secmem {

const char* counter_scheme_kind_name(CounterSchemeKind kind) noexcept {
  switch (kind) {
    case CounterSchemeKind::kMonolithic56: return "monolithic-56bit";
    case CounterSchemeKind::kSplit: return "split-counter";
    case CounterSchemeKind::kDelta: return "delta-7bit";
    case CounterSchemeKind::kDualDelta: return "delta-dual-length";
  }
  return "?";
}

std::unique_ptr<CounterScheme> make_counter_scheme(CounterSchemeKind kind,
                                                   BlockIndex num_blocks) {
  switch (kind) {
    case CounterSchemeKind::kMonolithic56:
      return std::make_unique<MonolithicCounters>(num_blocks);
    case CounterSchemeKind::kSplit:
      return std::make_unique<SplitCounters>(num_blocks);
    case CounterSchemeKind::kDelta:
      return std::make_unique<DeltaCounters>(num_blocks);
    case CounterSchemeKind::kDualDelta:
      return std::make_unique<DualLengthDeltaCounters>(num_blocks);
  }
  return nullptr;
}

void CounterScheme::deserialize_all(std::span<const std::uint8_t> store) {
  const std::uint64_t lines = num_storage_lines();
  for (std::uint64_t line = 0; line < lines; ++line) {
    deserialize_line(line, std::span<const std::uint8_t, 64>(
                               store.data() + line * 64, 64));
  }
}

void CounterScheme::read_counters(std::span<std::uint64_t> counters) const {
  for (std::uint64_t b = 0; b < counters.size(); ++b)
    counters[b] = read_counter(b);
}

const char* counter_event_name(CounterEvent event) noexcept {
  switch (event) {
    case CounterEvent::kIncrement: return "increment";
    case CounterEvent::kReset: return "reset";
    case CounterEvent::kReencode: return "reencode";
    case CounterEvent::kExpand: return "expand";
    case CounterEvent::kReencrypt: return "reencrypt";
  }
  return "?";
}

}  // namespace secmem
