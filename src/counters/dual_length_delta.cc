#include "counters/dual_length_delta.h"

#include <algorithm>

#include "common/bitops.h"

namespace secmem {

DualLengthDeltaCounters::DualLengthDeltaCounters(BlockIndex num_blocks,
                                                 DeltaConfig config)
    : num_blocks_(num_blocks),
      config_(config),
      groups_((num_blocks + kGroupBlocks - 1) / kGroupBlocks) {}

std::uint64_t DualLengthDeltaCounters::read_counter(BlockIndex block) const {
  const Group& g = groups_.at(block / kGroupBlocks);
  return g.ref + g.delta[block % kGroupBlocks];
}

bool DualLengthDeltaCounters::encodable(const Group& g) const {
  for (unsigned i = 0; i < kGroupBlocks; ++i)
    if (g.delta[i] > limit_for(g, i / kDeltasPerGroup)) return false;
  return true;
}

void DualLengthDeltaCounters::serialize_line(
    std::uint64_t line, std::span<std::uint8_t, 64> out) const {
  // Layout (Figure 6): [ref:56][group-index:8][6-bit deltas x64 = 384]
  // [overflow extension: 4 bits x16 = 64] = 512 bits exactly.
  // The group-index byte encodes which delta-group owns the overflow bits
  // (0xFF = none). Expanded deltas store their low 6 bits in the base
  // field and their high 4 bits in the extension field.
  const Group& g = groups_.at(line);
  std::fill(out.begin(), out.end(), 0);
  std::span<std::uint8_t> bytes(out);
  insert_field(bytes, 0, 56, g.ref);
  insert_field(bytes, 56, 8,
               g.expanded < 0 ? 0xFF : static_cast<std::uint64_t>(g.expanded));
  for (unsigned i = 0; i < kGroupBlocks; ++i)
    insert_field(bytes, 64 + i * kBaseBits, kBaseBits,
                 g.delta[i] & kBaseMax);
  if (g.expanded >= 0) {
    const unsigned base = static_cast<unsigned>(g.expanded) * kDeltasPerGroup;
    for (unsigned i = 0; i < kDeltasPerGroup; ++i)
      insert_field(bytes, 448 + i * 4, 4,
                   static_cast<std::uint64_t>(g.delta[base + i]) >> kBaseBits);
  }
}

WriteOutcome DualLengthDeltaCounters::on_write(BlockIndex block) {
  const std::uint64_t group_idx = block / kGroupBlocks;
  const unsigned slot = static_cast<unsigned>(block % kGroupBlocks);
  const unsigned delta_group = slot / kDeltasPerGroup;
  Group& g = groups_.at(group_idx);
  std::uint16_t& d = g.delta[slot];

  if (d < limit_for(g, delta_group)) {
    ++d;
    const std::uint64_t counter = g.ref + d;
    if (config_.enable_reset && d != 0) {
      const bool all_equal = std::all_of(
          g.delta.begin(), g.delta.end(),
          [v = d](std::uint16_t x) { return x == v; });
      if (all_equal) {
        // Convergence reset also releases the overflow bits: all deltas
        // become zero, which any width can represent.
        g.ref += d;
        g.delta.fill(0);
        g.expanded = -1;
        ++resets_;
        return {counter, CounterEvent::kReset, group_idx};
      }
    }
    return {counter, CounterEvent::kIncrement, group_idx};
  }

  // This delta cannot grow within its current width.
  if (g.expanded < 0) {
    // Spare overflow bits are unclaimed: expand this delta-group
    // (Figure 6) and retry the increment with the wider limit.
    g.expanded = static_cast<int>(delta_group);
    ++expansions_;
    ++d;
    return {g.ref + d, CounterEvent::kExpand, group_idx};
  }

  // Overflow bits already spoken for (or this IS the expanded group at its
  // 10-bit ceiling). Try Δmin re-encoding before re-encrypting.
  if (config_.enable_reencode) {
    const std::uint16_t dmin =
        *std::min_element(g.delta.begin(), g.delta.end());
    if (dmin > 0) {
      Group trial = g;
      for (std::uint16_t& x : trial.delta) x -= dmin;
      trial.ref += dmin;
      trial.delta[slot] += 1;
      if (encodable(trial)) {
        g = trial;
        ++reencodes_;
        return {g.ref + g.delta[slot], CounterEvent::kReencode, group_idx};
      }
    }
  }

  // Re-encrypt: new reference = largest counter in the group + 1, i.e.
  // strictly above every nonce ever used by any block in this group.
  const std::uint16_t dmax = *std::max_element(g.delta.begin(), g.delta.end());
  g.ref += static_cast<std::uint64_t>(dmax) + 1;
  g.delta.fill(0);
  g.expanded = -1;
  ++reencryptions_;
  return {g.ref, CounterEvent::kReencrypt, group_idx};
}


void DualLengthDeltaCounters::deserialize_line(
    std::uint64_t line, std::span<const std::uint8_t, 64> in) {
  Group& g = groups_.at(line);
  std::span<const std::uint8_t> bytes(in);
  g.ref = extract_field(bytes, 0, 56);
  const std::uint64_t idx = extract_field(bytes, 56, 8);
  g.expanded = idx == 0xFF ? -1 : static_cast<int>(idx);
  for (unsigned i = 0; i < kGroupBlocks; ++i)
    g.delta[i] = static_cast<std::uint16_t>(
        extract_field(bytes, 64 + i * kBaseBits, kBaseBits));
  if (g.expanded >= 0) {
    const unsigned base = static_cast<unsigned>(g.expanded) * kDeltasPerGroup;
    for (unsigned i = 0; i < kDeltasPerGroup; ++i)
      g.delta[base + i] = static_cast<std::uint16_t>(
          g.delta[base + i] |
          (extract_field(bytes, 448 + i * 4, 4) << kBaseBits));
  }
}

}  // namespace secmem
