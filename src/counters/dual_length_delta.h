// Dual-length delta encoding (paper §4.3, Figure 6).
//
// The 64 deltas of a block-group are split into 4 logical *delta-groups*
// of 16. Each delta is 6 bits by default (4x16x6 = 384 bits), leaving
// 72 bits spare next to the 56-bit reference (56+384+72 = 512). When a
// delta in some group would exceed 6 bits, that ONE group is expanded:
// its 16 deltas each gain 4 overflow bits (16x4 = 64 of the 72 spare
// bits; the rest index the expanded group), giving 10-bit deltas. A second
// overflow — another group needing expansion, or the expanded group
// exceeding 10 bits — falls back to reset / re-encode / re-encrypt, the
// same ladder as plain delta encoding.
//
// This constrained variable-length code trades optimal compression for a
// constant-latency decode (paper: 2 cycles), and reproduces the facesim
// anomaly in Table 2: workloads where several delta-groups grow fast
// concurrently re-encrypt *more* than plain 7-bit deltas because only one
// group can hold the spare bits.
#pragma once

#include <array>
#include <vector>

#include "counters/counter_scheme.h"
#include "counters/delta_counter.h"  // DeltaConfig

namespace secmem {

class DualLengthDeltaCounters final : public CounterScheme {
 public:
  static constexpr unsigned kGroupBlocks = 64;
  static constexpr unsigned kDeltaGroups = 4;
  static constexpr unsigned kDeltasPerGroup = 16;
  static constexpr unsigned kBaseBits = 6;
  static constexpr unsigned kExpandedBits = 10;  // 6 + 4 overflow bits
  static constexpr std::uint16_t kBaseMax = (1u << kBaseBits) - 1;      // 63
  static constexpr std::uint16_t kExpandedMax = (1u << kExpandedBits) - 1;

  explicit DualLengthDeltaCounters(BlockIndex num_blocks,
                                   DeltaConfig config = {});

  std::string name() const override { return "delta-dual-length"; }
  std::uint64_t read_counter(BlockIndex block) const override;
  WriteOutcome on_write(BlockIndex block) override;
  unsigned blocks_per_storage_line() const override { return kGroupBlocks; }
  unsigned blocks_per_group() const override { return kGroupBlocks; }
  double bits_per_block() const override {
    // Whole 512-bit line amortized: ref + deltas + spare/index bits.
    return 512.0 / kGroupBlocks;
  }
  unsigned decode_latency_cycles() const override { return 2; }
  BlockIndex num_blocks() const override { return num_blocks_; }
  void serialize_line(std::uint64_t line,
                      std::span<std::uint8_t, 64> out) const override;
  void deserialize_line(std::uint64_t line,
                        std::span<const std::uint8_t, 64> in) override;

  std::uint64_t reencryptions() const noexcept { return reencryptions_; }
  std::uint64_t resets() const noexcept { return resets_; }
  std::uint64_t reencodes() const noexcept { return reencodes_; }
  std::uint64_t expansions() const noexcept { return expansions_; }

  /// Which delta-group of a block-group currently holds the overflow bits
  /// (-1 if none) — exposed for tests.
  int expanded_group_of(std::uint64_t group) const {
    return groups_.at(group).expanded;
  }

 private:
  struct Group {
    std::uint64_t ref = 0;
    std::array<std::uint16_t, kGroupBlocks> delta{};
    int expanded = -1;  ///< delta-group index granted the overflow bits
  };

  std::uint16_t limit_for(const Group& g, unsigned delta_group) const {
    return (g.expanded == static_cast<int>(delta_group)) ? kExpandedMax
                                                         : kBaseMax;
  }

  /// True if every delta fits its group's current width.
  bool encodable(const Group& g) const;

  BlockIndex num_blocks_;
  DeltaConfig config_;
  std::vector<Group> groups_;
  std::uint64_t reencryptions_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t reencodes_ = 0;
  std::uint64_t expansions_ = 0;
};

}  // namespace secmem
