// Split counters [Yan et al., ISCA 2006] — the compact-counter baseline
// the paper compares against (§2.2, Table 2).
//
// Each 4KB block-group (64 blocks) shares a 64-bit *major* counter M;
// every block keeps a 7-bit *minor* counter m. The full encryption counter
// is the concatenation M‖m. One 64-byte storage line holds exactly
// 64 + 64x7 = 512 bits — an 8x storage reduction versus 64-bit
// monolithic counters.
//
// When any minor counter overflows, the whole group must be re-encrypted:
// M is incremented and every minor resets to zero. Unlike delta encoding
// there is no reset/re-encode escape hatch — which is precisely the
// difference Table 2 measures.
#pragma once

#include <array>
#include <vector>

#include "counters/counter_scheme.h"

namespace secmem {

class SplitCounters final : public CounterScheme {
 public:
  static constexpr unsigned kGroupBlocks = 64;
  static constexpr unsigned kMinorBits = 7;
  static constexpr std::uint64_t kMinorMax = (1u << kMinorBits) - 1;  // 127

  explicit SplitCounters(BlockIndex num_blocks);

  std::string name() const override { return "split-7bit-minor"; }
  std::uint64_t read_counter(BlockIndex block) const override;
  WriteOutcome on_write(BlockIndex block) override;
  unsigned blocks_per_storage_line() const override { return kGroupBlocks; }
  unsigned blocks_per_group() const override { return kGroupBlocks; }
  double bits_per_block() const override {
    // 64 major bits amortized over 64 blocks + 7 minor bits each.
    return kMinorBits + 64.0 / kGroupBlocks;
  }
  unsigned decode_latency_cycles() const override { return 0; }
  BlockIndex num_blocks() const override { return num_blocks_; }
  void serialize_line(std::uint64_t line,
                      std::span<std::uint8_t, 64> out) const override;
  void deserialize_line(std::uint64_t line,
                        std::span<const std::uint8_t, 64> in) override;

  std::uint64_t reencryptions() const noexcept { return reencryptions_; }

 private:
  struct Group {
    std::uint64_t major = 0;
    std::array<std::uint8_t, kGroupBlocks> minor{};
  };

  BlockIndex num_blocks_;
  std::vector<Group> groups_;
  std::uint64_t reencryptions_ = 0;
};

}  // namespace secmem
