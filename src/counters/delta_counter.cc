#include "counters/delta_counter.h"

#include <algorithm>

#include "common/bitops.h"

namespace secmem {

DeltaCounters::DeltaCounters(BlockIndex num_blocks, DeltaConfig config)
    : num_blocks_(num_blocks),
      config_(config),
      groups_((num_blocks + kGroupBlocks - 1) / kGroupBlocks) {}

std::uint64_t DeltaCounters::read_counter(BlockIndex block) const {
  const Group& g = groups_.at(block / kGroupBlocks);
  return g.ref + g.delta[block % kGroupBlocks];
}

void DeltaCounters::read_counters(std::span<std::uint64_t> counters) const {
  for (BlockIndex b = 0; b < counters.size();) {
    const Group& g = groups_[b / kGroupBlocks];
    const unsigned n = static_cast<unsigned>(std::min<std::uint64_t>(
        kGroupBlocks - b % kGroupBlocks, counters.size() - b));
    for (unsigned j = 0; j < n; ++j, ++b)
      counters[b] = g.ref + g.delta[b % kGroupBlocks];
  }
}

void DeltaCounters::serialize_line(std::uint64_t line,
                                   std::span<std::uint8_t, 64> out) const {
  // Layout (Figure 4/5): [ref:56][delta:7 x64] = 504 bits; 8 spare.
  //
  // The layout is byte-periodic: 8 deltas x 7 bits = 56 bits = 7 bytes, so
  // delta chunk k (deltas 8k..8k+7 packed low-to-high) starts at byte
  // 7*(k+1) exactly. Each chunk is emitted with one 8-byte store whose
  // spare high byte is zero — overwritten by the next chunk's low byte, and
  // for the last chunk (offset 56) it lands on spare byte 63, which the
  // layout defines as zero. Bit-identical to the insert_field loop.
  const Group& g = groups_.at(line);
  store_le64(out.data(), g.ref & ((std::uint64_t{1} << 56) - 1));
  for (unsigned k = 0; k < kGroupBlocks / 8; ++k) {
    std::uint64_t chunk = 0;
    for (unsigned j = 0; j < 8; ++j)
      chunk |= std::uint64_t{g.delta[8 * k + j]} << (kDeltaBits * j);
    store_le64(out.data() + 7 * (k + 1), chunk);
  }
}

WriteOutcome DeltaCounters::on_write(BlockIndex block) {
  const std::uint64_t group_idx = block / kGroupBlocks;
  Group& g = groups_.at(group_idx);
  std::uint8_t& d = g.delta[block % kGroupBlocks];

  if (d < kDeltaMax) {
    ++d;
    const std::uint64_t counter = g.ref + d;
    // Convergence reset (Fig 5b): purely representational, so the counter
    // value returned above is unaffected.
    if (config_.enable_reset && d != 0) {
      const bool all_equal = std::all_of(
          g.delta.begin(), g.delta.end(),
          [v = d](std::uint8_t x) { return x == v; });
      if (all_equal) {
        g.ref += d;
        g.delta.fill(0);
        ++resets_;
        return {counter, CounterEvent::kReset, group_idx};
      }
    }
    return {counter, CounterEvent::kIncrement, group_idx};
  }

  // Delta would overflow. Try re-encoding with a larger reference
  // (Fig 5c) before resorting to re-encryption.
  if (config_.enable_reencode) {
    const std::uint8_t dmin = *std::min_element(g.delta.begin(), g.delta.end());
    if (dmin > 0) {
      for (std::uint8_t& x : g.delta) x -= dmin;
      g.ref += dmin;
      ++reencodes_;
      ++d;  // now fits: d was kDeltaMax - dmin after the subtraction
      return {g.ref + d, CounterEvent::kReencode, group_idx};
    }
  }

  // Re-encrypt (Fig 5a): the overflowing counter is the group's largest;
  // its post-increment value ref + kDeltaMax + 1 becomes the new reference
  // and every block is re-encrypted with it.
  g.ref += kDeltaMax + 1;
  g.delta.fill(0);
  ++reencryptions_;
  return {g.ref, CounterEvent::kReencrypt, group_idx};
}


void DeltaCounters::deserialize_line(std::uint64_t line,
                                     std::span<const std::uint8_t, 64> in) {
  // Mirror of serialize_line's byte-periodic layout: one 8-byte load per
  // 8-delta chunk (the extra high byte read belongs to the next chunk and
  // is simply ignored by the 7-bit masks).
  Group& g = groups_.at(line);
  g.ref = load_le64(in.data()) & ((std::uint64_t{1} << 56) - 1);
  for (unsigned k = 0; k < kGroupBlocks / 8; ++k) {
    const std::uint64_t chunk = load_le64(in.data() + 7 * (k + 1));
    for (unsigned j = 0; j < 8; ++j)
      g.delta[8 * k + j] = static_cast<std::uint8_t>(
          (chunk >> (kDeltaBits * j)) & kDeltaMax);
  }
}

}  // namespace secmem
