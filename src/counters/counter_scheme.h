// Abstract interface over per-block write-counter storage schemes
// (paper §2 and §4).
//
// Counter-mode encryption needs one monotonic counter per 64-byte block.
// How those counters are *represented* in the off-chip counter region
// determines storage overhead, metadata-cache reach, integrity-tree depth,
// and how often whole block-groups must be re-encrypted. Implementations:
//
//   MonolithicCounters  — 56-bit counter per block (SGX-style baseline)
//   SplitCounters       — 64-bit major + 7-bit minors  [Yan et al., ISCA'06]
//   DeltaCounters       — 56-bit reference + 7-bit deltas (paper §4.1-4.3)
//   DualLengthDeltaCounters — 6-bit deltas + overflow-extension (paper §4.3)
//
// The scheme is a *functional* model: it owns the true counter values and
// reports, per write, which maintenance event fired. The encryption engine
// turns those events into DRAM traffic and re-encryption work.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace secmem {

/// Index of a protected 64-byte block within the secure region.
using BlockIndex = std::uint64_t;

/// What a write to a block required of the counter subsystem.
/// Order matters: higher values are "heavier" events.
enum class CounterEvent : std::uint8_t {
  kIncrement,    ///< delta/minor counter bumped in place
  kReset,        ///< deltas converged; folded into the reference (no crypto)
  kReencode,     ///< Δmin subtracted into the reference (no crypto)
  kExpand,       ///< delta-group granted the spare overflow bits (no crypto)
  kReencrypt,    ///< block-group must be re-encrypted with a fresh counter
};

const char* counter_event_name(CounterEvent event) noexcept;

struct WriteOutcome {
  /// Counter value to encrypt the freshly written block with.
  std::uint64_t counter;
  /// The heaviest maintenance event this write triggered.
  CounterEvent event;
  /// Valid when event == kReencrypt: every *other* block in this group
  /// must be re-read and re-encrypted with `counter` as well.
  std::uint64_t group = 0;
};

class CounterScheme {
 public:
  virtual ~CounterScheme() = default;

  virtual std::string name() const = 0;

  /// Current counter value of a block (as used for decryption).
  virtual std::uint64_t read_counter(BlockIndex block) const = 0;

  /// Record a write to `block`: bumps its counter, handling overflow per
  /// the scheme's rules.
  virtual WriteOutcome on_write(BlockIndex block) = 0;

  /// Number of protected blocks whose counters share one 64-byte line of
  /// counter storage (= metadata cache line reach, = tree leaf coverage).
  virtual unsigned blocks_per_storage_line() const = 0;

  /// Blocks per re-encryption group (1 when the scheme never groups).
  virtual unsigned blocks_per_group() const = 0;

  /// Bits of counter storage per protected block (for overhead figures).
  virtual double bits_per_block() const = 0;

  /// Extra cycles to decode a counter on the read path (paper §5.3:
  /// 2 cycles for delta schemes, 0 for directly stored counters).
  virtual unsigned decode_latency_cycles() const = 0;

  /// Total blocks this instance manages.
  virtual BlockIndex num_blocks() const = 0;

  /// Bit-exact stored representation of counter-storage line `line`
  /// (64 bytes) — what actually sits in untrusted DRAM and what the
  /// Bonsai tree authenticates. Must change whenever any counter in the
  /// line changes representation.
  virtual void serialize_line(std::uint64_t line,
                              std::span<std::uint8_t, 64> out) const = 0;

  /// Inverse of serialize_line: adopt the stored representation as this
  /// line's state — the decode a controller performs when counter lines
  /// are brought in from DRAM/NVMM (and what persistence restores from).
  /// Callers must authenticate the bytes first (integrity tree!).
  virtual void deserialize_line(std::uint64_t line,
                                std::span<const std::uint8_t, 64> in) = 0;

  /// Bulk deserialize: adopt a complete serialized counter region
  /// (`store` = num_storage_lines() x 64 bytes, already authenticated by
  /// the caller) as this scheme's state. One virtual dispatch per region
  /// instead of one per line; the default loops deserialize_line.
  virtual void deserialize_all(std::span<const std::uint8_t> store);

  /// Bulk read_counter over every block: counters[b] = read_counter(b)
  /// for b in [0, num_blocks()). `counters` must hold num_blocks()
  /// entries. Schemes with direct representations override this to skip
  /// the per-block virtual dispatch (the restore commit path reads the
  /// whole region's counters in one go).
  virtual void read_counters(std::span<std::uint64_t> counters) const;

  /// Index of the 64-byte counter-storage line holding `block`'s counter.
  std::uint64_t storage_line_of(BlockIndex block) const {
    return block / blocks_per_storage_line();
  }

  /// Number of 64-byte counter-storage lines for the whole region.
  std::uint64_t num_storage_lines() const {
    const unsigned per = blocks_per_storage_line();
    return (num_blocks() + per - 1) / per;
  }
};

/// Counter-representation choices exposed across the library.
enum class CounterSchemeKind : std::uint8_t {
  kMonolithic56,  ///< SGX-style full counters (baseline)
  kSplit,         ///< split counters [Yan et al., ISCA'06]
  kDelta,         ///< 7-bit frame-of-reference deltas (paper §4)
  kDualDelta,     ///< dual-length deltas (paper §4.3)
};

const char* counter_scheme_kind_name(CounterSchemeKind kind) noexcept;

/// Factory over the four implementations.
std::unique_ptr<CounterScheme> make_counter_scheme(CounterSchemeKind kind,
                                                   BlockIndex num_blocks);

}  // namespace secmem
