#include "counters/split_counter.h"

#include "common/bitops.h"

namespace secmem {

SplitCounters::SplitCounters(BlockIndex num_blocks)
    : num_blocks_(num_blocks),
      groups_((num_blocks + kGroupBlocks - 1) / kGroupBlocks) {}

std::uint64_t SplitCounters::read_counter(BlockIndex block) const {
  const Group& g = groups_.at(block / kGroupBlocks);
  const std::uint8_t m = g.minor[block % kGroupBlocks];
  return (g.major << kMinorBits) | m;
}

void SplitCounters::serialize_line(std::uint64_t line,
                                   std::span<std::uint8_t, 64> out) const {
  // Layout: [major:64][minor:7 x64] = exactly 512 bits.
  const Group& g = groups_.at(line);
  std::fill(out.begin(), out.end(), 0);
  std::span<std::uint8_t> bytes(out);
  insert_field(bytes, 0, 64, g.major);
  for (unsigned i = 0; i < kGroupBlocks; ++i)
    insert_field(bytes, 64 + i * kMinorBits, kMinorBits, g.minor[i]);
}

WriteOutcome SplitCounters::on_write(BlockIndex block) {
  const std::uint64_t group_idx = block / kGroupBlocks;
  Group& g = groups_.at(group_idx);
  std::uint8_t& m = g.minor[block % kGroupBlocks];

  if (m < kMinorMax) {
    ++m;
    return {(g.major << kMinorBits) | m, CounterEvent::kIncrement, group_idx};
  }

  // Minor overflow: bump the major, zero all minors, re-encrypt the group.
  // Every block's new counter is M+1 ‖ 0, strictly greater than any value
  // previously used in the group, so nonce freshness is preserved.
  ++g.major;
  g.minor.fill(0);
  ++reencryptions_;
  return {g.major << kMinorBits, CounterEvent::kReencrypt, group_idx};
}


void SplitCounters::deserialize_line(std::uint64_t line,
                                     std::span<const std::uint8_t, 64> in) {
  Group& g = groups_.at(line);
  std::span<const std::uint8_t> bytes(in);
  g.major = extract_field(bytes, 0, 64);
  for (unsigned i = 0; i < kGroupBlocks; ++i)
    g.minor[i] = static_cast<std::uint8_t>(
        extract_field(bytes, 64 + i * kMinorBits, kMinorBits));
}

}  // namespace secmem
