// Runtime-parameterized frame-of-reference delta counters.
//
// Paper §4.2, "Block Group and Delta Sizes": any (delta width, group
// size) pair whose reference + deltas fit one 64-byte storage line keeps
// single-read decode; the paper evaluates 7-bit deltas but notes
// "multiple block group and delta size combinations" satisfy the
// criterion. This scheme makes the width a runtime parameter so the
// storage-vs-re-encryption trade-off can be swept (bench_delta_geometry):
//
//   width w, group size g = floor((512 - 56) / w)   (56-bit reference)
//
//   w = 4  -> g = 114 (capped at 64: group cannot exceed 64 blocks
//                      without multi-line groups; we cap and waste bits)
//   w = 6  -> g = 64   (the dual-length base width)
//   w = 7  -> g = 64   (the paper's evaluated point, = DeltaCounters)
//   w = 9  -> g = 50
//   w = 12 -> g = 38
//
// Reset and Δmin re-encoding behave exactly as in DeltaCounters.
#pragma once

#include <vector>

#include "counters/counter_scheme.h"
#include "counters/delta_counter.h"  // DeltaConfig

namespace secmem {

class GenericDeltaCounters final : public CounterScheme {
 public:
  /// `delta_bits` in [2, 16].
  GenericDeltaCounters(BlockIndex num_blocks, unsigned delta_bits,
                       DeltaConfig config = {});

  /// Largest group size whose reference + deltas fit one 64-byte line
  /// (capped at 64 blocks so group index bits stay practical).
  static unsigned group_blocks_for(unsigned delta_bits);

  std::string name() const override;
  std::uint64_t read_counter(BlockIndex block) const override;
  WriteOutcome on_write(BlockIndex block) override;
  unsigned blocks_per_storage_line() const override { return group_blocks_; }
  unsigned blocks_per_group() const override { return group_blocks_; }
  double bits_per_block() const override {
    return delta_bits_ + 56.0 / group_blocks_;
  }
  unsigned decode_latency_cycles() const override { return 2; }
  BlockIndex num_blocks() const override { return num_blocks_; }
  void serialize_line(std::uint64_t line,
                      std::span<std::uint8_t, 64> out) const override;
  void deserialize_line(std::uint64_t line,
                        std::span<const std::uint8_t, 64> in) override;

  unsigned delta_bits() const noexcept { return delta_bits_; }
  std::uint64_t delta_max() const noexcept { return delta_max_; }
  std::uint64_t reencryptions() const noexcept { return reencryptions_; }
  std::uint64_t resets() const noexcept { return resets_; }
  std::uint64_t reencodes() const noexcept { return reencodes_; }

 private:
  struct Group {
    std::uint64_t ref = 0;
    std::vector<std::uint32_t> delta;  // group_blocks_ entries
  };

  BlockIndex num_blocks_;
  unsigned delta_bits_;
  std::uint64_t delta_max_;
  unsigned group_blocks_;
  DeltaConfig config_;
  std::vector<Group> groups_;
  std::uint64_t reencryptions_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t reencodes_ = 0;
};

}  // namespace secmem
