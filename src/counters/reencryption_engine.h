// Re-encryption engine with overflow buffer (paper §4.4, Figure 7).
//
// When a counter scheme reports kReencrypt, the affected block-group's
// address is enqueued here. The engine drains the queue in the background:
// each job reads the group's 64 blocks, re-encrypts them under the new
// common counter, and writes them back — consuming DRAM bandwidth but not
// stalling the cores (paper §5.2: "re-encryption can be performed without
// completely suspending the rest of the system"). The simulator charges
// the DRAM traffic; the crypto itself is pipelined behind it.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>

#include "common/stats.h"
#include "dram/dram_system.h"

namespace secmem {

class ReencryptionEngine {
 public:
  struct Job {
    std::uint64_t group_base_addr;  ///< byte address of the group's first block
    unsigned blocks;                ///< group size in 64-byte blocks
  };

  /// `capacity`: overflow-buffer depth (paper Fig 7). A full buffer
  /// forces a synchronous drain — the stall the buffer exists to avoid.
  // Counter references are registry-stable, so the name lookups happen
  // once here instead of per enqueue/drain.
  ReencryptionEngine(DramSystem& dram, StatRegistry& stats,
                     std::size_t capacity = 8)
      : dram_(dram),
        stalls_(stats.counter("reenc.buffer_full_stalls")),
        enqueued_(stats.counter("reenc.jobs_enqueued")),
        drained_(stats.counter("reenc.jobs_drained")),
        capacity_(capacity) {}

  /// Queue a block-group for re-encryption. Returns the cycle work
  /// completed if the buffer was full and had to drain synchronously at
  /// `now` first (0 otherwise).
  std::uint64_t enqueue(const Job& job, std::uint64_t now = 0) {
    std::uint64_t stall_done = 0;
    if (queue_.size() >= capacity_) {
      stalls_.inc();
      stall_done = drain(now);
    }
    queue_.push_back(job);
    enqueued_.inc();
    high_water_ = std::max(high_water_, queue_.size());
    return stall_done;
  }

  /// Drain all queued jobs starting at cycle `now`; returns the cycle the
  /// last writeback completes. Traffic lands on the shared DRAM channels,
  /// which is how re-encryption pressure becomes visible to the cores.
  std::uint64_t drain(std::uint64_t now);

  /// Re-encrypt one group as a read burst followed by a write burst:
  /// all of the group's reads issue back-to-back at `now` (overlapping
  /// across channels/banks), the batched AES kernel consumes the whole
  /// gather, and the writes issue once the last read returns. This is the
  /// timing counterpart of the software engines' gather → crypt_batch →
  /// store_blocks write path, and what drain() runs per job. Returns the
  /// cycle the last writeback completes.
  std::uint64_t reencrypt_group(const Job& job, std::uint64_t now);

  std::size_t pending() const noexcept { return queue_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t high_water() const noexcept { return high_water_; }
  std::uint64_t blocks_reencrypted() const noexcept { return blocks_done_; }

 private:
  DramSystem& dram_;
  StatCounter& stalls_;
  StatCounter& enqueued_;
  StatCounter& drained_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
  std::deque<Job> queue_;
  std::uint64_t blocks_done_ = 0;
};

}  // namespace secmem
