// Frame-of-reference delta-encoded counters (paper §4.1-4.3, Figure 5).
//
// Each 4KB block-group (64 blocks) stores one 56-bit reference value and
// 64 seven-bit deltas; block b's encryption counter is ref + delta[b].
// 56 + 64x7 = 504 bits fit one 64-byte storage line with 8 bits spare.
//
// Overflow handling, in escalating order of cost:
//   1. reset    (Fig 5b): when all deltas converge to one nonzero value v,
//                fold v into the reference and zero the deltas — pure
//                re-representation, no crypto work.
//   2. re-encode(Fig 5c): when a delta would overflow, subtract
//                Δmin = min(deltas) from every delta and add it to the
//                reference. Effective iff Δmin > 0.
//   3. re-encrypt(Fig 5a): nothing else helped — re-encrypt the whole
//                group with a fresh counter ref + max(delta) + 1, which
//                becomes the new reference; all deltas reset to zero.
//
// Both optimizations are individually toggleable for the §4.3 ablation.
#pragma once

#include <array>
#include <vector>

#include "counters/counter_scheme.h"

namespace secmem {

struct DeltaConfig {
  bool enable_reset = true;     ///< Fig 5b convergence reset
  bool enable_reencode = true;  ///< Fig 5c Δmin re-encoding
};

class DeltaCounters final : public CounterScheme {
 public:
  static constexpr unsigned kGroupBlocks = 64;
  static constexpr unsigned kDeltaBits = 7;
  static constexpr std::uint64_t kDeltaMax = (1u << kDeltaBits) - 1;  // 127

  explicit DeltaCounters(BlockIndex num_blocks, DeltaConfig config = {});

  std::string name() const override { return "delta-7bit"; }
  std::uint64_t read_counter(BlockIndex block) const override;
  WriteOutcome on_write(BlockIndex block) override;
  unsigned blocks_per_storage_line() const override { return kGroupBlocks; }
  unsigned blocks_per_group() const override { return kGroupBlocks; }
  double bits_per_block() const override {
    return kDeltaBits + 56.0 / kGroupBlocks;
  }
  unsigned decode_latency_cycles() const override { return 2; }
  BlockIndex num_blocks() const override { return num_blocks_; }
  void serialize_line(std::uint64_t line,
                      std::span<std::uint8_t, 64> out) const override;
  void deserialize_line(std::uint64_t line,
                        std::span<const std::uint8_t, 64> in) override;
  /// Direct group-walk bulk read: one ref load per group instead of one
  /// virtual read_counter dispatch per block (restore commit path).
  void read_counters(std::span<std::uint64_t> counters) const override;

  std::uint64_t reencryptions() const noexcept { return reencryptions_; }
  std::uint64_t resets() const noexcept { return resets_; }
  std::uint64_t reencodes() const noexcept { return reencodes_; }

  /// Reference value of a group (exposed for tests/verification).
  std::uint64_t group_reference(std::uint64_t group) const {
    return groups_.at(group).ref;
  }

 private:
  struct Group {
    std::uint64_t ref = 0;
    std::array<std::uint8_t, kGroupBlocks> delta{};
  };

  BlockIndex num_blocks_;
  DeltaConfig config_;
  std::vector<Group> groups_;
  std::uint64_t reencryptions_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t reencodes_ = 0;
};

}  // namespace secmem
