#include "counters/reencryption_engine.h"

#include <algorithm>

namespace secmem {

std::uint64_t ReencryptionEngine::drain(std::uint64_t now) {
  std::uint64_t done = now;
  while (!queue_.empty()) {
    const Job job = queue_.front();
    queue_.pop_front();
    for (unsigned b = 0; b < job.blocks; ++b) {
      const std::uint64_t addr = job.group_base_addr + b * 64ULL;
      // Read the old ciphertext, then write the re-encrypted block. The
      // AES work overlaps the DRAM traffic, so traffic is the cost.
      const std::uint64_t read_done = dram_.access(done, addr, false);
      done = dram_.access(read_done, addr, true);
      ++blocks_done_;
    }
    drained_.inc();
  }
  return done;
}

}  // namespace secmem
