#include "counters/reencryption_engine.h"

#include <algorithm>

namespace secmem {

std::uint64_t ReencryptionEngine::reencrypt_group(const Job& job,
                                                  std::uint64_t now) {
  // Read burst: every block's read issues at `now` — the channel model
  // serializes same-channel requests internally, so independent channels
  // and row-buffer hits overlap instead of paying one round trip each.
  std::uint64_t reads_done = now;
  for (unsigned b = 0; b < job.blocks; ++b) {
    const std::uint64_t addr = job.group_base_addr + b * 64ULL;
    reads_done = std::max(reads_done, dram_.access(now, addr, false));
  }
  // The batched AES kernel consumes the whole gather while it lands; the
  // write burst issues once the last read (and thus the keystream for the
  // new counter) is available. Traffic, not crypto, remains the cost.
  std::uint64_t done = reads_done;
  for (unsigned b = 0; b < job.blocks; ++b) {
    const std::uint64_t addr = job.group_base_addr + b * 64ULL;
    done = std::max(done, dram_.access(reads_done, addr, true));
  }
  blocks_done_ += job.blocks;
  return done;
}

std::uint64_t ReencryptionEngine::drain(std::uint64_t now) {
  std::uint64_t done = now;
  while (!queue_.empty()) {
    const Job job = queue_.front();
    queue_.pop_front();
    done = reencrypt_group(job, done);
    drained_.inc();
  }
  return done;
}

}  // namespace secmem
