// Baseline counter storage: one full-width counter per block (paper §2.1).
//
// Mirrors Intel SGX: a 56-bit counter per 64-byte block, eight counters
// packed per 64-byte counter-storage line, ~11% storage overhead. A 56-bit
// counter never overflows within a machine's lifetime, so no group
// re-encryption machinery exists in this scheme.
#pragma once

#include <vector>

#include "counters/counter_scheme.h"

namespace secmem {

class MonolithicCounters final : public CounterScheme {
 public:
  /// `counter_bits` is 56 (SGX) or 64; only affects overhead accounting.
  explicit MonolithicCounters(BlockIndex num_blocks,
                              unsigned counter_bits = 56);

  std::string name() const override { return name_; }
  std::uint64_t read_counter(BlockIndex block) const override;
  WriteOutcome on_write(BlockIndex block) override;
  unsigned blocks_per_storage_line() const override { return 8; }
  unsigned blocks_per_group() const override { return 1; }
  double bits_per_block() const override { return counter_bits_; }
  unsigned decode_latency_cycles() const override { return 0; }
  BlockIndex num_blocks() const override { return counters_.size(); }
  void serialize_line(std::uint64_t line,
                      std::span<std::uint8_t, 64> out) const override;
  void deserialize_line(std::uint64_t line,
                        std::span<const std::uint8_t, 64> in) override;

 private:
  std::vector<std::uint64_t> counters_;
  unsigned counter_bits_;
  std::string name_;
};

}  // namespace secmem
