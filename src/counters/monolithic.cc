#include "counters/monolithic.h"

#include "common/bitops.h"

namespace secmem {

MonolithicCounters::MonolithicCounters(BlockIndex num_blocks,
                                       unsigned counter_bits)
    : counters_(num_blocks, 0),
      counter_bits_(counter_bits),
      name_("monolithic-" + std::to_string(counter_bits) + "bit") {}

std::uint64_t MonolithicCounters::read_counter(BlockIndex block) const {
  return counters_.at(block);
}

void MonolithicCounters::serialize_line(
    std::uint64_t line, std::span<std::uint8_t, 64> out) const {
  // Eight 64-bit counter slots per line (SGX packs 56-bit counters into
  // 64-bit slots; the spare byte is zero).
  for (unsigned i = 0; i < 8; ++i) {
    const BlockIndex block = line * 8 + i;
    const std::uint64_t v =
        block < counters_.size() ? counters_[block] : 0;
    store_le64(out.data() + 8 * i, v);
  }
}

WriteOutcome MonolithicCounters::on_write(BlockIndex block) {
  std::uint64_t& ctr = counters_.at(block);
  ++ctr;
  return {ctr, CounterEvent::kIncrement, 0};
}


void MonolithicCounters::deserialize_line(
    std::uint64_t line, std::span<const std::uint8_t, 64> in) {
  for (unsigned i = 0; i < 8; ++i) {
    const BlockIndex block = line * 8 + i;
    if (block < counters_.size())
      counters_[block] = load_le64(in.data() + 8 * i);
  }
}

}  // namespace secmem
