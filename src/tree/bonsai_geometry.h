// Bonsai Merkle tree geometry (paper §2.2, Table 1, §5.2).
//
// A Bonsai Merkle tree [Rogers et al., MICRO'07] protects only the
// *counter storage* — data-block MACs are bound to counters, so counter
// freshness implies data freshness. The tree's leaves are the 64-byte
// counter-storage lines; each interior 64-byte node holds 8 children's
// 64-bit MACs; the top level small enough to fit the on-chip SRAM (3KB in
// the paper) is kept on chip and implicitly trusted.
//
// "Levels" follows the paper's accounting: the number of *off-chip* levels
// a worst-case verification walks, counting the counter-storage line
// itself. For 512MB protected with monolithic counters this yields 5
// levels; delta-encoded counters shrink counter storage 8x, giving 4 —
// the 5 -> 4 reduction behind Figure 8's delta-encoding speedup.
#pragma once

#include <cstdint>
#include <vector>

namespace secmem {

struct BonsaiGeometry {
  static constexpr unsigned kArity = 8;        ///< 8x 64-bit MACs per node
  static constexpr unsigned kNodeBytes = 64;

  /// Build geometry for `counter_lines` 64-byte leaf lines with
  /// `onchip_bytes` of trusted SRAM for the root level.
  BonsaiGeometry(std::uint64_t counter_lines, std::uint64_t onchip_bytes);

  /// nodes_at[0] = leaf (counter) lines; nodes_at[i] = nodes of level i.
  /// The last entry is the on-chip root level.
  std::vector<std::uint64_t> nodes_at;

  /// Off-chip levels walked on a cold verification, counting the counter
  /// line itself (paper's "5-level off-chip integrity tree").
  unsigned offchip_levels() const {
    return static_cast<unsigned>(nodes_at.size()) - 1;
  }

  /// Total level count including the on-chip root level.
  unsigned total_levels() const {
    return static_cast<unsigned>(nodes_at.size());
  }

  /// Parent node index of node `idx` at `level` (level+1's indexing).
  static std::uint64_t parent_of(std::uint64_t idx) { return idx / kArity; }

  /// Slot within the parent node.
  static unsigned slot_in_parent(std::uint64_t idx) {
    return static_cast<unsigned>(idx % kArity);
  }

  /// Bytes of off-chip storage used by interior (non-leaf, off-chip)
  /// levels — the tree's own storage overhead.
  std::uint64_t offchip_tree_bytes() const;
};

}  // namespace secmem
