// VerifiedTreeCache — the verified frontier of a Bonsai tree, cached in
// trusted on-chip storage (paper §2, §5: the 8 KB metadata cache the
// performance argument assumes; SecDDR and Sealer make the same bet).
//
// A bounded set-associative cache of (level, node) entries sitting
// between the engines and BonsaiTree:
//
//  - Read path (`verify`): entries are *verified on fill* and *trusted
//    while resident*, so an authentication walk stops at the first
//    cached ancestor instead of climbing to the on-chip root — O(depth)
//    CW-MACs become O(1) amortized on a hot working set. Counter lines
//    themselves (level 0) are cached too: a level-0 hit replaces the
//    whole walk with one 64-byte compare against the verified copy.
//
//  - Write path (`update`): a write-back dirty-node buffer. A leaf
//    update lands its new tag in the (cached) level-1 node and marks it
//    dirty; ancestor MACs are recomputed once per eviction/flush instead
//    of once per write, coalescing the root-ward propagation of hot
//    lines.
//
// Observational equivalence with the eager path is the design invariant:
// for any sequence of engine operations the post-`flush()` backing tree
// is bit-identical to what eager update_leaf calls would have produced
// (interior contents are a pure bottom-up function of the leaf lines),
// and every verify outcome matches eager verify_leaf. Write-path fills
// adopt the node's backing bytes *unverified* — exactly the bytes the
// eager read-modify-write would fold in — so a corrupted sibling slot is
// still detected one level down, when that sibling's own tag fails to
// match, just as in the eager path. The one intentional divergence:
// backing bytes corrupted *while the node is resident* are masked until
// the entry leaves the cache (on-chip copies are not attacker-reachable;
// the stale off-chip bytes are never consumed). Engines therefore wrap
// every untrusted-surface excursion in a flush barrier — see
// SecureMemory::UntrustedView::tree().
//
// Thread safety: the mutating operations (verify/update/flush/...) need
// exclusive ownership, statically enforced one level up: each engine's
// cache lives inside a SecureMemory that is itself SECMEM_GUARDED_BY the
// owning facade/shard lock (engine/concurrent.h, engine/sharded_memory.h),
// so under clang -Wthread-safety an unlocked path to them does not
// compile. `probe()` is the one concurrent entry point: a const read-side
// verify that any number of shared-lock holders may run at once — it
// never fills, never reorders, and its only cache mutation is the
// relaxed-atomic LRU touch (so residency decisions still see read-path
// recency once a writer takes over). Metrics go to an optional
// MetricsCell (relaxed atomics), so the observability plane reads them
// without touching any lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/metrics.h"
#include "tree/bonsai_tree.h"

namespace secmem {

struct TreeCacheConfig {
  /// Total capacity in KB of 64-byte entries; 0 disables the cache
  /// entirely (every call degrades to the eager BonsaiTree walk).
  unsigned capacity_kb = 8;
  unsigned ways = 8;
};

class VerifiedTreeCache {
 public:
  /// `tree` must outlive the cache. `metrics` (optional) receives the
  /// kTreeCache* counters; pass the engine's hot-path cell.
  VerifiedTreeCache(BonsaiTree& tree, const TreeCacheConfig& config,
                    MetricsCell* metrics = nullptr);

  VerifiedTreeCache(const VerifiedTreeCache&) = delete;
  VerifiedTreeCache& operator=(const VerifiedTreeCache&) = delete;

  bool enabled() const noexcept { return entry_count_ != 0; }

  /// Cache-accelerated BonsaiTree::verify_leaf — identical outcome for
  /// any state reachable through the engine API. The verdict must be
  /// consumed: ignoring it is accepting unauthenticated data.
  [[nodiscard]] bool verify(std::uint64_t line, BonsaiTree::LineView content);

  /// Read-side verify: the identical accept/reject verdict to verify(),
  /// but const — no fills, no path installation, no dirty-state changes;
  /// the only cache mutation is the relaxed-atomic LRU touch. Safe to
  /// call from any number of threads holding the owning lock SHARED
  /// (engines' seqlock read fast path). `resident` reports whether a
  /// verified level-0 copy answered the probe (true) or the walk had to
  /// recompute MACs (false) — callers use a false to occasionally bounce
  /// the read to the exclusive path so verify() can warm the frontier.
  [[nodiscard]] bool probe(std::uint64_t line, BonsaiTree::LineView content,
                           bool& resident) const;

  /// Cache-accelerated BonsaiTree::update_leaf. `content` must already
  /// be the line's current backing bytes (engines serialize into counter
  /// storage first). Ancestor MAC recomputation is deferred: the tree's
  /// backing nodes go stale until eviction or flush().
  void update(std::uint64_t line, BonsaiTree::LineView content);

  /// Barrier: write every dirty node back (bottom-up, each dirty
  /// ancestor MAC recomputed once), then drop all residency. Afterwards
  /// the backing tree is bit-identical to the eager path's and nothing
  /// is trusted — required before save(), scrub sweeps, key rotation,
  /// and any untrusted-surface access.
  void flush();

  /// Drop everything *without* write-back — for when the backing tree
  /// was just rebuilt from scratch (restore, key rotation) and cached
  /// state is meaningless.
  void invalidate_all() noexcept;

  /// Occupied entries (tests/benches).
  std::size_t occupied() const noexcept;

 private:
  struct Entry {
    std::uint64_t key = 0;  ///< (level << 48) | node
    /// Higher = more recently used. Atomic (relaxed) because probe()
    /// touches recency from shared-lock readers while no writer can run;
    /// every other field is written under the owner's exclusive lock
    /// only. Mutable: recency is metadata, not cached content — touching
    /// it is the one mutation the const read path performs.
    mutable std::atomic<std::uint64_t> lru{0};
    bool valid = false;
    bool dirty = false;  ///< ancestor MACs (and possibly backing) stale
    std::array<std::uint8_t, BonsaiTree::kLineBytes> content;
  };

  static std::uint64_t key_of(unsigned level, std::uint64_t node) noexcept {
    return (static_cast<std::uint64_t>(level) << 48) | node;
  }
  static unsigned level_of(std::uint64_t key) noexcept {
    return static_cast<unsigned>(key >> 48);
  }
  static std::uint64_t node_of(std::uint64_t key) noexcept {
    return key & ((1ULL << 48) - 1);
  }

  std::size_t set_of(std::uint64_t key) const noexcept;
  const Entry* find(unsigned level, std::uint64_t node) const noexcept;
  Entry* find(unsigned level, std::uint64_t node) noexcept;
  void touch(const Entry& e) const noexcept {
    e.lru.store(next_lru_.fetch_add(1, std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
  void count(MetricId id) const noexcept {
    if (metrics_) metrics_->add(id);
  }
  std::span<Entry> entries() noexcept { return {entries_.get(), entry_count_}; }
  std::span<const Entry> entries() const noexcept {
    return {entries_.get(), entry_count_};
  }

  /// Install (level, node) with `content`, evicting (and writing back, if
  /// dirty) the set's LRU victim. Must not already be present.
  void install(unsigned level, std::uint64_t node, const std::uint8_t* content,
               bool dirty);

  /// Write a dirty entry's content to the backing store and propagate its
  /// recomputed MAC root-ward: cached ancestors absorb the new tag (and
  /// turn dirty); uncached levels are eagerly read-modify-written, exactly
  /// like BonsaiTree::update_leaf. Never fills, so eviction cannot recurse.
  void write_back(const Entry& e);

  BonsaiTree& tree_;
  MetricsCell* metrics_;
  std::size_t sets_ = 0;
  unsigned ways_ = 0;
  /// Atomic for the same reason as Entry::lru: probe() advances recency
  /// from concurrent shared-lock readers.
  mutable std::atomic<std::uint64_t> next_lru_{1};
  /// sets_ x ways_, row-major. A raw array (not std::vector): entries
  /// hold atomics and are neither movable nor copyable.
  std::unique_ptr<Entry[]> entries_;
  std::size_t entry_count_ = 0;
  /// Scratch for verify(): interior nodes the walk authenticated, to be
  /// installed on success.
  std::vector<std::pair<unsigned, std::uint64_t>> path_;
};

}  // namespace secmem
