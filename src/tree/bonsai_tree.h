// Functional Bonsai Merkle tree over counter storage.
//
// Maintains real interior-node contents (8x 64-bit child MACs per 64-byte
// node) and verifies/updates authentication paths with the Carter-Wegman
// MAC. The top level lives in trusted on-chip SRAM: an attacker with
// physical access may corrupt any *off-chip* level (leaves and interior
// nodes below the root level) but never the root level — which is exactly
// the attack surface the `corrupt_node` test hook exposes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/cw_mac.h"
#include "tree/bonsai_geometry.h"

namespace secmem {

class BonsaiTree {
 public:
  static constexpr std::size_t kLineBytes = BonsaiGeometry::kNodeBytes;
  using LineView = std::span<const std::uint8_t, kLineBytes>;

  BonsaiTree(const BonsaiGeometry& geometry, const CwMacKey& mac_key);

  /// Tag selecting the deferred-build constructor: interior levels are
  /// allocated zero-filled but NOT initialized — nothing verifies until
  /// the caller runs rebuild_from_lines() over the full leaf image.
  /// Restore staging uses this to pay for exactly one bottom-up build.
  struct DeferredBuild {};
  BonsaiTree(const BonsaiGeometry& geometry, const CwMacKey& mac_key,
             DeferredBuild);

  /// Recompute the authentication path after counter line `line` changed
  /// to `content`. Must be called for every counter-storage mutation.
  void update_leaf(std::uint64_t line, LineView content);

  /// Rebuild every interior level bottom-up from the complete leaf image
  /// `lines` (nodes_at[0] x 64 bytes of counter storage): each level's
  /// node MACs run through one batched Carter-Wegman pass over all of the
  /// level's children, so a full rebuild costs O(N) batched MACs instead
  /// of the O(N log N) scalar MACs of N leaf-to-root update_leaf walks.
  /// The resulting tree is bit-identical to calling update_leaf for every
  /// line in order (on either a zero-built or a deferred-build tree —
  /// every slot backing an existing child is overwritten, and slots past
  /// the last child are zero in both).
  void rebuild_from_lines(std::span<const std::uint8_t> lines);

  /// Check `content` (as read back from untrusted storage) against the
  /// tree. Walks leaf MAC -> parent -> ... -> on-chip root level; false on
  /// any mismatch (tamper or replay).
  [[nodiscard]] bool verify_leaf(std::uint64_t line, LineView content) const;

  const BonsaiGeometry& geometry() const noexcept { return geometry_; }

  /// ------------------------------------------------------------------
  /// Traversal primitive — THE leaf-to-root walk.
  /// ------------------------------------------------------------------
  /// update_leaf, verify_leaf, and the VerifiedTreeCache (tree_cache.h)
  /// are all thin step functions over this one loop, so a caching layer
  /// hooks into every path exactly once.
  enum class StepAction : std::uint8_t {
    kContinue,  ///< keep climbing; the walk recomputes `tag` from backing
    kStopOk,    ///< path resolved (trusted ancestor reached) — success
    kStopFail,  ///< mismatch — abort the walk
  };

  /// Index of the trusted on-chip root level.
  unsigned top_level() const noexcept { return geometry_.total_levels() - 1; }

  /// MAC of a 64-byte node/line, domain-separated by (level, index).
  std::uint64_t mac_of(unsigned level, std::uint64_t index,
                       LineView content) const;

  /// Raw backing bytes of an interior/root node (levels 1..top).
  std::span<std::uint8_t, kLineBytes> node_span(unsigned level,
                                                std::uint64_t node);
  std::span<const std::uint8_t, kLineBytes> node_span(
      unsigned level, std::uint64_t node) const;

  /// Walk from the entity at (`child_level`, `child`) — whose MAC is
  /// `tag` — up to the root level. At each parent level the walk invokes
  /// `step(level, node, slot, tag)`; on kContinue it recomputes `tag`
  /// from the node's current *backing* content and climbs. Returns false
  /// iff a step reported kStopFail. Steps may mutate node contents (they
  /// run before the tag recompute); the walk itself only reads.
  template <typename StepFn>
  bool walk_from(unsigned child_level, std::uint64_t child,
                 std::uint64_t tag, StepFn&& step) const {
    const unsigned top = top_level();
    for (unsigned lvl = child_level + 1; lvl <= top; ++lvl) {
      const std::uint64_t node = BonsaiGeometry::parent_of(child);
      const unsigned slot = BonsaiGeometry::slot_in_parent(child);
      switch (step(lvl, node, slot, tag)) {
        case StepAction::kStopOk: return true;
        case StepAction::kStopFail: return false;
        case StepAction::kContinue: break;
      }
      if (lvl == top) break;  // root level is trusted storage; no parent
      tag = mac_of(lvl, node, LineView(node_span(lvl, node)));
      child = node;
    }
    return true;
  }

  /// --- attack-surface hooks (tests / attack demos) ---
  /// Flip one bit of an off-chip interior node. `level` in
  /// [1, offchip_levels()); level 0 is counter storage, owned elsewhere.
  void corrupt_node(unsigned level, std::uint64_t node, unsigned bit);

  /// Snapshot/restore an interior node — lets tests mount replay attacks
  /// (restore an old node alongside old counter data).
  std::vector<std::uint8_t> read_node(unsigned level, std::uint64_t node) const;
  void write_node(unsigned level, std::uint64_t node,
                  std::span<const std::uint8_t> bytes);

 private:
  std::uint8_t* node_ptr(unsigned level, std::uint64_t node);
  const std::uint8_t* node_ptr(unsigned level, std::uint64_t node) const;

  /// Domain-separated node identity: (level, index) -> synthetic address
  /// fed to the MAC (the single definition mac_of and the batched rebuild
  /// share).
  static constexpr std::uint64_t node_id(unsigned level,
                                         std::uint64_t index) noexcept {
    return (static_cast<std::uint64_t>(level) << 48) | index;
  }

  BonsaiGeometry geometry_;
  CwMac mac_;
  /// levels_[i] = contiguous node bytes of tree level i+1 (leaves are the
  /// caller's counter storage and not duplicated here). The last level is
  /// the trusted on-chip root level.
  std::vector<std::vector<std::uint8_t>> levels_;
};

}  // namespace secmem
