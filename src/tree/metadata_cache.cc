#include "tree/metadata_cache.h"

namespace secmem {

MetadataCache::Access MetadataCache::access(std::uint64_t addr, bool dirty) {
  Access result;
  if (cache_.lookup(addr)) {
    if (dirty) cache_.mark_dirty(addr);
    result.hit = true;
    hits_.inc();
    return result;
  }
  result.hit = false;
  misses_.inc();
  if (auto victim = cache_.fill(addr, dirty); victim && victim->dirty)
    result.writebacks.push_back(victim->line_addr);
  return result;
}

std::vector<std::uint64_t> MetadataCache::flush() {
  std::vector<std::uint64_t> writebacks;
  for (const Eviction& ev : cache_.flush())
    if (ev.dirty) writebacks.push_back(ev.line_addr);
  return writebacks;
}

}  // namespace secmem
