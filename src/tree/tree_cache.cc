#include "tree/tree_cache.h"

#include <cstring>
#include <utility>

#include "common/bitops.h"
#include "common/ct.h"

namespace secmem {

VerifiedTreeCache::VerifiedTreeCache(BonsaiTree& tree,
                                     const TreeCacheConfig& config,
                                     MetricsCell* metrics)
    : tree_(tree), metrics_(metrics) {
  const std::size_t total =
      static_cast<std::size_t>(config.capacity_kb) * 1024 /
      BonsaiTree::kLineBytes;
  if (total == 0) return;  // disabled: eager delegation
  ways_ = config.ways ? config.ways : 1;
  if (ways_ > total) ways_ = static_cast<unsigned>(total);
  // Power-of-two sets so set_of() is a mask; round down, never below 1.
  sets_ = 1;
  while (sets_ * 2 * ways_ <= total) sets_ *= 2;
  entry_count_ = sets_ * ways_;
  entries_ = std::make_unique<Entry[]>(entry_count_);
  path_.reserve(tree_.geometry().total_levels());
}

std::size_t VerifiedTreeCache::set_of(std::uint64_t key) const noexcept {
  // Fibonacci multiplicative hash; (level, node) keys are near-sequential,
  // this spreads them across sets.
  return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 32) &
         (sets_ - 1);
}

const VerifiedTreeCache::Entry* VerifiedTreeCache::find(
    unsigned level, std::uint64_t node) const noexcept {
  const std::uint64_t key = key_of(level, node);
  const Entry* row = entries_.get() + set_of(key) * ways_;
  for (unsigned w = 0; w < ways_; ++w)
    if (row[w].valid && row[w].key == key) return &row[w];
  return nullptr;
}

VerifiedTreeCache::Entry* VerifiedTreeCache::find(
    unsigned level, std::uint64_t node) noexcept {
  return const_cast<Entry*>(std::as_const(*this).find(level, node));
}

std::size_t VerifiedTreeCache::occupied() const noexcept {
  std::size_t n = 0;
  for (const Entry& e : entries()) n += e.valid;
  return n;
}

void VerifiedTreeCache::install(unsigned level, std::uint64_t node,
                                const std::uint8_t* content, bool dirty) {
  const std::uint64_t key = key_of(level, node);
  Entry* row = entries_.get() + set_of(key) * ways_;
  // One relaxed load per way: the victim's stamp is carried in a local
  // instead of re-read per comparison (fills sit on the uniform-read miss
  // path, where the extra atomic traffic was measurable).
  Entry* victim = &row[0];
  std::uint64_t victim_lru = victim->lru.load(std::memory_order_relaxed);
  for (unsigned w = 0; w < ways_; ++w) {
    if (!row[w].valid) {
      victim = &row[w];
      break;
    }
    const std::uint64_t w_lru = row[w].lru.load(std::memory_order_relaxed);
    if (w_lru < victim_lru) {
      victim = &row[w];
      victim_lru = w_lru;
    }
  }
  if (victim->valid && victim->dirty) {
    write_back(*victim);
    count(MetricId::kTreeCacheWritebacks);
  }
  victim->key = key;
  victim->valid = true;
  victim->dirty = dirty;
  std::memcpy(victim->content.data(), content, BonsaiTree::kLineBytes);
  touch(*victim);
  count(MetricId::kTreeCacheFills);
}

void VerifiedTreeCache::write_back(const Entry& e) {
  const unsigned level = level_of(e.key);
  const std::uint64_t node = node_of(e.key);
  if (level > 0)
    std::memcpy(tree_.node_span(level, node).data(), e.content.data(),
                BonsaiTree::kLineBytes);
  // Level 0 (counter lines) is the engine's storage and never goes stale
  // here — `update` requires content already serialized — so only the tag
  // needs propagating.
  const std::uint64_t tag = tree_.mac_of(
      level, node, BonsaiTree::LineView(e.content.data(),
                                        BonsaiTree::kLineBytes));
  tree_.walk_from(level, node, tag,
                  [this](unsigned lvl, std::uint64_t n, unsigned slot,
                         std::uint64_t t) {
                    if (Entry* anc = find(lvl, n)) {
                      store_le64(anc->content.data() + 8 * slot, t);
                      anc->dirty = true;
                      return BonsaiTree::StepAction::kStopOk;
                    }
                    store_le64(tree_.node_span(lvl, n).data() + 8 * slot, t);
                    return BonsaiTree::StepAction::kContinue;
                  });
}

bool VerifiedTreeCache::verify(std::uint64_t line,
                               BonsaiTree::LineView content) {
  if (!enabled()) return tree_.verify_leaf(line, content);

  if (Entry* leaf = find(0, line)) {
    // The resident copy was authenticated on fill and tracks every
    // update, so a byte compare IS the verification — zero MACs. It is
    // still an accept/reject decision over attacker-influenced bytes, so
    // it gets the constant-time compare like every other verification.
    touch(*leaf);
    count(MetricId::kTreeCacheHits);
    return ct_equal(leaf->content.data(), content.data(),
                    BonsaiTree::kLineBytes);
  }

  path_.clear();
  bool truncated = false;
  const unsigned top = tree_.top_level();
  const bool ok = tree_.walk_from(
      0, line, tree_.mac_of(0, line, content),
      [&](unsigned lvl, std::uint64_t node, unsigned slot, std::uint64_t tag) {
        if (lvl < top) {
          if (Entry* anc = find(lvl, node)) {
            touch(*anc);
            truncated = true;
            return ct_equal_u64(load_le64(anc->content.data() + 8 * slot),
                                tag)
                       ? BonsaiTree::StepAction::kStopOk
                       : BonsaiTree::StepAction::kStopFail;
          }
          path_.emplace_back(lvl, node);
        }
        return ct_equal_u64(
                   load_le64(tree_.node_span(lvl, node).data() + 8 * slot),
                   tag)
                   ? BonsaiTree::StepAction::kContinue
                   : BonsaiTree::StepAction::kStopFail;
      });
  count(truncated ? MetricId::kTreeCacheHits : MetricId::kTreeCacheMisses);
  if (!ok) return false;

  // The whole path authenticated — it is now frontier. Copy from live
  // backing at install time, not walk time: an eviction write-back during
  // an earlier install may have refreshed a slot since the walk read it.
  // No pre-install find() needed: every queued (lvl, node) MISSED during
  // the walk, and install() only ever (re)fills the keys it is given — a
  // preceding install cannot create one of the remaining path keys, and
  // the leaf key (0, line) missed at the top of this function.
  for (const auto& [lvl, node] : path_)
    install(lvl, node, tree_.node_span(lvl, node).data(), /*dirty=*/false);
  install(0, line, content.data(), /*dirty=*/false);
  return true;
}

bool VerifiedTreeCache::probe(std::uint64_t line,
                              BonsaiTree::LineView content,
                              bool& resident) const {
  if (!enabled()) {
    resident = true;  // nothing to warm — never bounce to the writer path
    return tree_.verify_leaf(line, content);
  }

  if (const Entry* leaf = find(0, line)) {
    // Same verdict as verify()'s resident hit; the LRU touch is the sole
    // mutation (relaxed atomic, see Entry::lru).
    touch(*leaf);
    count(MetricId::kTreeCacheProbeHits);
    resident = true;
    return ct_equal(leaf->content.data(), content.data(),
                    BonsaiTree::kLineBytes);
  }

  // Cold line: authenticate via the walk, truncating at any cached
  // ancestor exactly like verify() — but install nothing. `resident`
  // stays false so the caller can occasionally route the line through
  // the exclusive path, where verify() warms the frontier.
  resident = false;
  const unsigned top = tree_.top_level();
  const bool ok = tree_.walk_from(
      0, line, tree_.mac_of(0, line, content),
      [&](unsigned lvl, std::uint64_t node, unsigned slot, std::uint64_t tag) {
        if (lvl < top) {
          if (const Entry* anc = find(lvl, node)) {
            touch(*anc);
            return ct_equal_u64(load_le64(anc->content.data() + 8 * slot),
                                tag)
                       ? BonsaiTree::StepAction::kStopOk
                       : BonsaiTree::StepAction::kStopFail;
          }
        }
        return ct_equal_u64(
                   load_le64(tree_.node_span(lvl, node).data() + 8 * slot),
                   tag)
                   ? BonsaiTree::StepAction::kContinue
                   : BonsaiTree::StepAction::kStopFail;
      });
  count(MetricId::kTreeCacheProbeMisses);
  return ok;
}

void VerifiedTreeCache::update(std::uint64_t line,
                               BonsaiTree::LineView content) {
  if (!enabled()) {
    tree_.update_leaf(line, content);
    return;
  }

  // Track the new leaf bytes (never dirty: engines serialize into counter
  // storage before calling, so backing already matches).
  if (Entry* leaf = find(0, line)) {
    std::memcpy(leaf->content.data(), content.data(), BonsaiTree::kLineBytes);
    touch(*leaf);
  } else {
    install(0, line, content.data(), /*dirty=*/false);
  }

  const std::uint64_t tag = tree_.mac_of(0, line, content);
  const std::uint64_t parent = BonsaiGeometry::parent_of(line);
  const unsigned slot = BonsaiGeometry::slot_in_parent(line);
  if (tree_.top_level() == 1) {
    // Parent is the trusted root level: nothing to defer.
    store_le64(tree_.node_span(1, parent).data() + 8 * slot, tag);
    count(MetricId::kTreeCacheHits);
    return;
  }
  if (Entry* anc = find(1, parent)) {
    store_le64(anc->content.data() + 8 * slot, tag);
    anc->dirty = true;
    touch(*anc);
    count(MetricId::kTreeCacheHits);
    return;
  }
  // Absorb the backing bytes unverified — the same bytes the eager
  // read-modify-write folds in, so detection outcomes are unchanged (a
  // corrupted sibling slot still fails one level down) — and defer the
  // ancestor MACs until write-back.
  std::array<std::uint8_t, BonsaiTree::kLineBytes> node;
  std::memcpy(node.data(), tree_.node_span(1, parent).data(),
              BonsaiTree::kLineBytes);
  store_le64(node.data() + 8 * slot, tag);
  install(1, parent, node.data(), /*dirty=*/true);
  count(MetricId::kTreeCacheMisses);
}

void VerifiedTreeCache::flush() {
  if (!enabled()) return;
  count(MetricId::kTreeCacheFlushes);
  // Level-ascending passes: writing back a level-L node may dirty a cached
  // ancestor at L+1, which a later pass then picks up.
  const unsigned top = tree_.top_level();
  for (unsigned lvl = 0; lvl < top; ++lvl) {
    for (Entry& e : entries()) {
      if (e.valid && e.dirty && level_of(e.key) == lvl) {
        write_back(e);
        e.dirty = false;
        count(MetricId::kTreeCacheWritebacks);
      }
    }
  }
  invalidate_all();
}

void VerifiedTreeCache::invalidate_all() noexcept {
  for (Entry& e : entries()) {
    e.valid = false;
    e.dirty = false;
  }
}

}  // namespace secmem
