#include "tree/bonsai_tree.h"

#include <cassert>
#include <cstring>

#include "common/bitops.h"
#include "common/ct.h"

namespace secmem {

BonsaiTree::BonsaiTree(const BonsaiGeometry& geometry, const CwMacKey& mac_key)
    : geometry_(geometry), mac_(mac_key) {
  // Allocate interior levels 1..top. Level 0 (counter lines) belongs to
  // the counter-storage owner.
  for (std::size_t lvl = 1; lvl < geometry_.nodes_at.size(); ++lvl)
    levels_.emplace_back(geometry_.nodes_at[lvl] * kLineBytes, 0);

  // Initialize bottom-up so an all-zero counter region verifies from the
  // start: every slot holds the MAC of an all-zero child.
  std::vector<std::uint8_t> zero_line(kLineBytes, 0);
  for (std::size_t lvl = 1; lvl < geometry_.nodes_at.size(); ++lvl) {
    const std::uint64_t children = geometry_.nodes_at[lvl - 1];
    for (std::uint64_t child = 0; child < children; ++child) {
      const LineView child_view(
          lvl == 1 ? zero_line.data() : node_ptr(static_cast<unsigned>(lvl - 1), child),
          kLineBytes);
      const std::uint64_t tag =
          mac_of(static_cast<unsigned>(lvl - 1), child, child_view);
      std::uint8_t* parent = node_ptr(static_cast<unsigned>(lvl),
                                      BonsaiGeometry::parent_of(child));
      store_le64(parent + 8 * BonsaiGeometry::slot_in_parent(child), tag);
    }
  }
}

std::uint8_t* BonsaiTree::node_ptr(unsigned level, std::uint64_t node) {
  assert(level >= 1 && level < geometry_.nodes_at.size());
  return levels_[level - 1].data() + node * kLineBytes;
}

const std::uint8_t* BonsaiTree::node_ptr(unsigned level,
                                         std::uint64_t node) const {
  assert(level >= 1 && level < geometry_.nodes_at.size());
  return levels_[level - 1].data() + node * kLineBytes;
}

std::uint64_t BonsaiTree::mac_of(unsigned level, std::uint64_t index,
                                 LineView content) const {
  // Domain-separate node identities: (level, index) -> synthetic address.
  const std::uint64_t node_id =
      (static_cast<std::uint64_t>(level) << 48) | index;
  return mac_.compute(node_id, /*counter=*/0, content);
}

std::span<std::uint8_t, BonsaiTree::kLineBytes> BonsaiTree::node_span(
    unsigned level, std::uint64_t node) {
  return std::span<std::uint8_t, kLineBytes>(node_ptr(level, node),
                                             kLineBytes);
}

std::span<const std::uint8_t, BonsaiTree::kLineBytes> BonsaiTree::node_span(
    unsigned level, std::uint64_t node) const {
  return std::span<const std::uint8_t, kLineBytes>(node_ptr(level, node),
                                                   kLineBytes);
}

void BonsaiTree::update_leaf(std::uint64_t line, LineView content) {
  walk_from(0, line, mac_of(0, line, content),
            [this](unsigned lvl, std::uint64_t node, unsigned slot,
                   std::uint64_t tag) {
              store_le64(node_span(lvl, node).data() + 8 * slot, tag);
              return StepAction::kContinue;
            });
}

bool BonsaiTree::verify_leaf(std::uint64_t line, LineView content) const {
  return walk_from(
      0, line, mac_of(0, line, content),
      [this](unsigned lvl, std::uint64_t node, unsigned slot,
             std::uint64_t tag) {
        return ct_equal_u64(load_le64(node_span(lvl, node).data() + 8 * slot),
                            tag)
                   ? StepAction::kContinue
                   : StepAction::kStopFail;
      });
}

void BonsaiTree::corrupt_node(unsigned level, std::uint64_t node,
                              unsigned bit) {
  assert(level >= 1 && level + 1 < geometry_.total_levels() &&
         "only off-chip interior nodes are attacker-reachable");
  std::uint8_t* p = node_ptr(level, node);
  p[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

std::vector<std::uint8_t> BonsaiTree::read_node(unsigned level,
                                                std::uint64_t node) const {
  const std::uint8_t* p = node_ptr(level, node);
  return std::vector<std::uint8_t>(p, p + kLineBytes);
}

void BonsaiTree::write_node(unsigned level, std::uint64_t node,
                            std::span<const std::uint8_t> bytes) {
  assert(bytes.size() == kLineBytes);
  std::memcpy(node_ptr(level, node), bytes.data(), kLineBytes);
}

}  // namespace secmem
