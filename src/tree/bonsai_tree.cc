#include "tree/bonsai_tree.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "common/bitops.h"
#include "common/ct.h"

namespace secmem {

BonsaiTree::BonsaiTree(const BonsaiGeometry& geometry, const CwMacKey& mac_key)
    : BonsaiTree(geometry, mac_key, DeferredBuild{}) {
  // Initialize bottom-up so an all-zero counter region verifies from the
  // start: every slot holds the MAC of an all-zero child.
  const std::vector<std::uint8_t> zero_lines(
      geometry_.nodes_at[0] * kLineBytes, 0);
  rebuild_from_lines(zero_lines);
}

BonsaiTree::BonsaiTree(const BonsaiGeometry& geometry, const CwMacKey& mac_key,
                       DeferredBuild)
    : geometry_(geometry), mac_(mac_key) {
  // Allocate interior levels 1..top. Level 0 (counter lines) belongs to
  // the counter-storage owner.
  for (std::size_t lvl = 1; lvl < geometry_.nodes_at.size(); ++lvl)
    levels_.emplace_back(geometry_.nodes_at[lvl] * kLineBytes, 0);
}

void BonsaiTree::rebuild_from_lines(std::span<const std::uint8_t> lines) {
  assert(lines.size() == geometry_.nodes_at[0] * kLineBytes);
  constexpr std::size_t kBatch = 256;
  std::array<std::uint64_t, kBatch> ids;
  std::array<std::uint64_t, kBatch> zero_ctrs{};  // node MACs bind ctr 0
  std::array<std::uint64_t, kBatch> tags;
  for (std::size_t lvl = 1; lvl < geometry_.nodes_at.size(); ++lvl) {
    // A level's children sit contiguously: the counter-storage image for
    // level 1, the previous interior level's backing bytes above that —
    // so each batched MAC pass reads the packed lines in place.
    const std::uint64_t children = geometry_.nodes_at[lvl - 1];
    const std::uint8_t* child_base =
        lvl == 1 ? lines.data() : levels_[lvl - 2].data();
    for (std::uint64_t first = 0; first < children; first += kBatch) {
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(kBatch, children - first));
      for (std::size_t i = 0; i < n; ++i)
        ids[i] = node_id(static_cast<unsigned>(lvl - 1), first + i);
      mac_.compute_batch(
          std::span<const std::uint64_t>(ids.data(), n),
          std::span<const std::uint64_t>(zero_ctrs.data(), n),
          std::span<const std::uint8_t>(child_base + first * kLineBytes,
                                        n * kLineBytes),
          std::span<std::uint64_t>(tags.data(), n));
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t child = first + i;
        std::uint8_t* parent = node_ptr(static_cast<unsigned>(lvl),
                                        BonsaiGeometry::parent_of(child));
        store_le64(parent + 8 * BonsaiGeometry::slot_in_parent(child),
                   tags[i]);
      }
    }
  }
}

std::uint8_t* BonsaiTree::node_ptr(unsigned level, std::uint64_t node) {
  assert(level >= 1 && level < geometry_.nodes_at.size());
  return levels_[level - 1].data() + node * kLineBytes;
}

const std::uint8_t* BonsaiTree::node_ptr(unsigned level,
                                         std::uint64_t node) const {
  assert(level >= 1 && level < geometry_.nodes_at.size());
  return levels_[level - 1].data() + node * kLineBytes;
}

std::uint64_t BonsaiTree::mac_of(unsigned level, std::uint64_t index,
                                 LineView content) const {
  return mac_.compute(node_id(level, index), /*counter=*/0, content);
}

std::span<std::uint8_t, BonsaiTree::kLineBytes> BonsaiTree::node_span(
    unsigned level, std::uint64_t node) {
  return std::span<std::uint8_t, kLineBytes>(node_ptr(level, node),
                                             kLineBytes);
}

std::span<const std::uint8_t, BonsaiTree::kLineBytes> BonsaiTree::node_span(
    unsigned level, std::uint64_t node) const {
  return std::span<const std::uint8_t, kLineBytes>(node_ptr(level, node),
                                                   kLineBytes);
}

void BonsaiTree::update_leaf(std::uint64_t line, LineView content) {
  walk_from(0, line, mac_of(0, line, content),
            [this](unsigned lvl, std::uint64_t node, unsigned slot,
                   std::uint64_t tag) {
              store_le64(node_span(lvl, node).data() + 8 * slot, tag);
              return StepAction::kContinue;
            });
}

bool BonsaiTree::verify_leaf(std::uint64_t line, LineView content) const {
  return walk_from(
      0, line, mac_of(0, line, content),
      [this](unsigned lvl, std::uint64_t node, unsigned slot,
             std::uint64_t tag) {
        return ct_equal_u64(load_le64(node_span(lvl, node).data() + 8 * slot),
                            tag)
                   ? StepAction::kContinue
                   : StepAction::kStopFail;
      });
}

void BonsaiTree::corrupt_node(unsigned level, std::uint64_t node,
                              unsigned bit) {
  assert(level >= 1 && level + 1 < geometry_.total_levels() &&
         "only off-chip interior nodes are attacker-reachable");
  std::uint8_t* p = node_ptr(level, node);
  p[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

std::vector<std::uint8_t> BonsaiTree::read_node(unsigned level,
                                                std::uint64_t node) const {
  const std::uint8_t* p = node_ptr(level, node);
  return std::vector<std::uint8_t>(p, p + kLineBytes);
}

void BonsaiTree::write_node(unsigned level, std::uint64_t node,
                            std::span<const std::uint8_t> bytes) {
  assert(bytes.size() == kLineBytes);
  std::memcpy(node_ptr(level, node), bytes.data(), kLineBytes);
}

}  // namespace secmem
