#include "tree/bonsai_geometry.h"

#include "common/bitops.h"

namespace secmem {

BonsaiGeometry::BonsaiGeometry(std::uint64_t counter_lines,
                               std::uint64_t onchip_bytes) {
  nodes_at.push_back(counter_lines);
  // Grow upward until a level fits in the on-chip SRAM; that level is the
  // trusted root level. Counter lines (level 0) always live off-chip —
  // only MAC levels can be on-chip — so at least one parent level exists
  // even when the counter region itself is tiny.
  do {
    nodes_at.push_back(ceil_div(nodes_at.back(), kArity));
  } while (nodes_at.back() * kNodeBytes > onchip_bytes);
}

std::uint64_t BonsaiGeometry::offchip_tree_bytes() const {
  std::uint64_t bytes = 0;
  // Level 0 is counter storage (accounted separately); the final level is
  // on-chip. Everything between is off-chip tree storage.
  for (std::size_t i = 1; i + 1 < nodes_at.size(); ++i)
    bytes += nodes_at[i] * kNodeBytes;
  return bytes;
}

}  // namespace secmem
