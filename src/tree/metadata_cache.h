// On-chip counter/MAC/tree-node metadata cache (paper Table 1: 32KB,
// 8-way, shared by all encryption metadata).
//
// Timing-model component: tracks which 64-byte metadata lines (counter
// lines, tree nodes, and — in the separate-MAC baseline — MAC lines) are
// resident on chip. A resident tree node is *verified and trusted*, so a
// verification walk stops at the first cached ancestor; that is the
// latency-saving property Gassend-style tree caching provides (§2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "common/stats.h"

namespace secmem {

class MetadataCache {
 public:
  // Counter references stay valid for the registry's lifetime (see
  // StatRegistry), so the map lookups happen once here, not per access.
  MetadataCache(const CacheConfig& config, StatRegistry& stats)
      : cache_(config),
        hits_(stats.counter("metacache.hits")),
        misses_(stats.counter("metacache.misses")) {}

  struct Access {
    bool hit;
    /// Dirty metadata lines displaced by this fill (must be written back).
    std::vector<std::uint64_t> writebacks;
  };

  /// Touch metadata line at `addr`; on miss, fill it (dirty if `dirty`).
  Access access(std::uint64_t addr, bool dirty);

  /// Probe without filling or LRU update.
  bool contains(std::uint64_t addr) const { return cache_.contains(addr); }

  /// Drop everything (e.g. between benchmark phases).
  std::vector<std::uint64_t> flush();

 private:
  SetAssocCache cache_;
  StatCounter& hits_;
  StatCounter& misses_;
};

}  // namespace secmem
