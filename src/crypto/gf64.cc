#include "crypto/gf64.h"

#include "crypto/crypto_backend.h"

namespace secmem {

Clmul128 clmul64_portable(std::uint64_t a, std::uint64_t b) noexcept {
  // Shift-and-xor schoolbook carry-less multiply. Branch on bits of b.
  std::uint64_t lo = 0, hi = 0;
  for (int i = 0; i < 64; ++i) {
    if ((b >> i) & 1) {
      lo ^= a << i;
      if (i != 0) hi ^= a >> (64 - i);
    }
  }
  return {lo, hi};
}

std::uint64_t gf64_mul_portable(std::uint64_t a, std::uint64_t b) noexcept {
  // Reduce the 128-bit product modulo x^64 + x^4 + x^3 + x + 1.
  // x^64 ≡ x^4 + x^3 + x + 1 = 0x1b, so each high bit h_i contributes
  // 0x1b << i; folding twice handles the <= 4-bit spill of the first fold.
  const Clmul128 p = clmul64_portable(a, b);
  std::uint64_t lo = p.lo;
  std::uint64_t hi = p.hi;
  for (int fold = 0; fold < 2 && hi != 0; ++fold) {
    const Clmul128 r = clmul64_portable(hi, 0x1bULL);
    lo ^= r.lo;
    hi = r.hi;
  }
  return lo;
}

Clmul128 clmul64(std::uint64_t a, std::uint64_t b) noexcept {
  return gf64_ops().clmul(a, b);
}

std::uint64_t gf64_mul(std::uint64_t a, std::uint64_t b) noexcept {
  return gf64_ops().mul(a, b);
}

const Gf64Ops& gf64_ops_portable() noexcept {
  static constexpr Gf64Ops ops = {"portable", clmul64_portable,
                                  gf64_mul_portable};
  return ops;
}

Gf64MulTable::Gf64MulTable(std::uint64_t h) noexcept {
  for (int i = 0; i < 8; ++i)
    for (int b = 0; b < 256; ++b)
      table_[i][b] =
          gf64_mul(static_cast<std::uint64_t>(b) << (8 * i), h);
}

std::uint64_t gf64_pow(std::uint64_t base, std::uint64_t exp) noexcept {
  std::uint64_t result = 1;  // multiplicative identity: polynomial "1"
  std::uint64_t acc = base;
  while (exp != 0) {
    if (exp & 1) result = gf64_mul(result, acc);
    acc = gf64_mul(acc, acc);
    exp >>= 1;
  }
  return result;
}

}  // namespace secmem
