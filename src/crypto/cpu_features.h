// Runtime CPU capability detection + crypto backend selection policy.
//
// The crypto layer ships two implementations of its hot kernels: the
// portable scalar code (always available, the reference for differential
// tests) and hardware-accelerated variants using AES-NI and PCLMULQDQ.
// Which one a newly constructed Aes128/CwMac/CtrKeystream binds to is
// decided here:
//
//   1. `SECMEM_FORCE_PORTABLE=1` in the environment pins the portable
//      kernels process-wide (read once, at first query) — the CI escape
//      hatch and the way to benchmark the fallback on capable hardware.
//   2. set_crypto_backend_choice() overrides the policy at runtime for
//      objects constructed afterwards — how differential tests and
//      benches hold both backends in one process.
//   3. Otherwise cpuid decides: accelerated kernels are used only when
//      the CPU actually advertises the instructions (and the binary was
//      built with a compiler that could emit them).
#pragma once

#include <cstdint>

namespace secmem {

/// What the host CPU advertises (cached after the first probe). All
/// fields are false on non-x86 builds.
struct CpuFeatures {
  bool aesni = false;   ///< AESENC/AESDEC/AESKEYGENASSIST
  bool pclmul = false;  ///< PCLMULQDQ
  bool sse41 = false;   ///< baseline the vector kernels assume
};

/// Raw cpuid probe; ignores the env var and runtime overrides.
const CpuFeatures& cpu_features() noexcept;

/// True if SECMEM_FORCE_PORTABLE=1 (or any nonempty value other than
/// "0") was set when first queried.
bool forced_portable_env() noexcept;

/// Backend selection policy for objects constructed after the call.
enum class CryptoBackendChoice : std::uint8_t {
  kAuto,         ///< cpuid + SECMEM_FORCE_PORTABLE decide (default)
  kPortable,     ///< scalar reference kernels
  kAccelerated,  ///< hardware kernels; degrades to portable if absent
};

void set_crypto_backend_choice(CryptoBackendChoice choice) noexcept;
CryptoBackendChoice crypto_backend_choice() noexcept;

}  // namespace secmem
