// Counter-mode keystream generation for 64-byte memory blocks (paper §2.1).
//
// Each protected 64-byte block has an associated write counter. The
// keystream for a block is four AES-128 encryptions of the tweak
//   (block physical address ‖ counter ‖ chunk index)
// so the keystream is unique per (address, counter) pair — the address
// binds the pad to its location (spatial uniqueness) and the counter makes
// it one-time across writes (temporal uniqueness).
//
// The four tweak blocks are independent, so one keystream is exactly one
// Aes128::encrypt_blocks4 call — on AES-NI the four AESENC chains
// interleave and fill the pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes128.h"

namespace secmem {

/// Size of a protected memory block — one cache line.
inline constexpr std::size_t kBlockBytes = 64;

using DataBlock = std::array<std::uint8_t, kBlockBytes>;

/// Generates per-block keystreams with AES-128 in counter mode.
class CtrKeystream {
 public:
  explicit CtrKeystream(const Aes128::Key& key) noexcept : aes_(key) {}

  /// Construct on an explicit kernel backend (differential tests,
  /// per-backend benches).
  CtrKeystream(const Aes128::Key& key, const Aes128Ops& ops) noexcept
      : aes_(key, ops) {}

  /// Fill `out` with the keystream for (block_addr, counter).
  /// `block_addr` is the 64-byte-aligned physical address of the block.
  void generate(std::uint64_t block_addr, std::uint64_t counter,
                std::span<std::uint8_t, kBlockBytes> out) const noexcept;

  /// Batch variant: out[i] = keystream(addrs[i], counters[i]). All three
  /// spans have the same length. Engines use this from read_blocks /
  /// write_blocks so pads for a whole request batch are produced
  /// back-to-back without re-entering the per-block pipeline.
  void generate_batch(std::span<const std::uint64_t> addrs,
                      std::span<const std::uint64_t> counters,
                      std::span<DataBlock> out) const noexcept;

  /// XOR the keystream for (block_addr, counter) into `data` in place.
  /// Counter-mode encryption and decryption are the same operation.
  void crypt(std::uint64_t block_addr, std::uint64_t counter,
             std::span<std::uint8_t, kBlockBytes> data) const noexcept;

  /// Batch variant of crypt: blocks[i] ^= keystream(addrs[i], counters[i]).
  void crypt_batch(std::span<const std::uint64_t> addrs,
                   std::span<const std::uint64_t> counters,
                   std::span<DataBlock> blocks) const noexcept;

  /// Kernel backend the underlying cipher bound to.
  const char* backend_name() const noexcept { return aes_.backend_name(); }

 private:
  Aes128 aes_;
};

}  // namespace secmem
