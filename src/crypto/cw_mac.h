// 56-bit Carter-Wegman message authentication code (paper §3.2).
//
// Construction (mirrors the SGX MAC described by Gueron, which the paper
// adopts): a polynomial-evaluation universal hash over GF(2^64) of the
// ciphertext, keyed by a secret field element h, is masked with a one-time
// AES pad derived from the block address and the write counter, then
// truncated to 56 bits:
//
//   tag = trunc56( polyhash_h(ct) XOR AES_k2(addr ‖ ctr ‖ MAC_DOMAIN) )
//
// Binding the pad to (addr, ctr) gives the Bonsai-Merkle-tree property
// (Rogers et al. [10]): a data MAC is valid only for this address and this
// counter value, so protecting counter integrity (via the tree) is enough
// to prevent replay of data blocks.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes128.h"
#include "crypto/ctr_keystream.h"
#include "crypto/gf64.h"

namespace secmem {

/// Width of stored MAC tags. 56 bits leaves room for the 7-bit Hamming
/// code + 1 scrub parity bit inside a 64-bit ECC lane (paper §3.3).
inline constexpr unsigned kMacBits = 56;
inline constexpr std::uint64_t kMacMask = (std::uint64_t{1} << kMacBits) - 1;

/// Keys for the MAC: a GF(2^64) hash key and an AES pad key.
struct CwMacKey {
  std::uint64_t hash_key;  ///< h, the universal-hash evaluation point
  Aes128::Key pad_key;     ///< k2, keys the one-time pad PRF
};

/// Computes 56-bit Carter-Wegman tags over 64-byte blocks.
class CwMac {
 public:
  explicit CwMac(const CwMacKey& key) noexcept;

  /// Tag over an arbitrary-length message bound to (addr, counter).
  /// Message length need not be a multiple of 8; it is zero-padded and the
  /// bit length is absorbed as a final hash coefficient.
  std::uint64_t compute(std::uint64_t addr, std::uint64_t counter,
                        std::span<const std::uint8_t> message) const noexcept;

  /// Convenience for 64-byte data blocks.
  std::uint64_t compute_block(std::uint64_t addr, std::uint64_t counter,
                              const DataBlock& block) const noexcept {
    return compute(addr, counter, std::span<const std::uint8_t>(block));
  }

  /// Constant-pattern check: true if tag matches the recomputed value.
  bool verify(std::uint64_t addr, std::uint64_t counter,
              std::span<const std::uint8_t> message,
              std::uint64_t tag) const noexcept {
    return compute(addr, counter, message) == (tag & kMacMask);
  }

  /// The AES one-time pad for (addr, counter). The pad is independent of
  /// the message, so callers that check many candidate messages under one
  /// (addr, counter) — flip-and-check error correction above all — hoist
  /// this single AES call out of the loop.
  std::uint64_t pad_for(std::uint64_t addr,
                        std::uint64_t counter) const noexcept;

  /// Tag given a precomputed pad (see pad_for).
  std::uint64_t compute_with_pad(
      std::uint64_t pad, std::span<const std::uint8_t> message) const noexcept {
    return (polyhash(message) ^ pad) & kMacMask;
  }

  bool verify_with_pad(std::uint64_t pad,
                       std::span<const std::uint8_t> message,
                       std::uint64_t tag) const noexcept {
    return compute_with_pad(pad, message) == (tag & kMacMask);
  }

 private:
  std::uint64_t polyhash(std::span<const std::uint8_t> message) const noexcept;

  std::uint64_t h_;
  Gf64MulTable mul_h_;  ///< precomputed x -> x*h (hardware-multiplier model)
  Aes128 pad_;
};

}  // namespace secmem
