// 56-bit Carter-Wegman message authentication code (paper §3.2).
//
// Construction (mirrors the SGX MAC described by Gueron, which the paper
// adopts): a polynomial-evaluation universal hash over GF(2^64) of the
// ciphertext, keyed by a secret field element h, is masked with a one-time
// AES pad derived from the block address and the write counter, then
// truncated to 56 bits:
//
//   tag = trunc56( polyhash_h(ct) XOR AES_k2(addr ‖ ctr ‖ MAC_DOMAIN) )
//
// Binding the pad to (addr, ctr) gives the Bonsai-Merkle-tree property
// (Rogers et al. [10]): a data MAC is valid only for this address and this
// counter value, so protecting counter integrity (via the tree) is enough
// to prevent replay of data blocks.
//
// The GF(2^64) multiplies dispatch with the rest of the crypto kernels:
// on a PCLMULQDQ host each multiply-by-h is three carry-less multiplies
// and the 16KB windowed table is never built; on the portable path the
// table is built once per key and each product is 8 loads + 7 XORs.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>

#include "common/ct.h"
#include "crypto/aes128.h"
#include "crypto/ctr_keystream.h"
#include "crypto/gf64.h"

namespace secmem {

struct Gf64Ops;

/// Width of stored MAC tags. 56 bits leaves room for the 7-bit Hamming
/// code + 1 scrub parity bit inside a 64-bit ECC lane (paper §3.3).
inline constexpr unsigned kMacBits = 56;
inline constexpr std::uint64_t kMacMask = (std::uint64_t{1} << kMacBits) - 1;

/// Keys for the MAC: a GF(2^64) hash key and an AES pad key.
struct CwMacKey {
  std::uint64_t hash_key;  ///< h, the universal-hash evaluation point
  Aes128::Key pad_key;     ///< k2, keys the one-time pad PRF
};

/// Computes 56-bit Carter-Wegman tags over 64-byte blocks.
class CwMac {
 public:
  /// Number of 64-bit words hashed per 64-byte data block.
  static constexpr std::size_t kBlockWords = kBlockBytes / 8;

  explicit CwMac(const CwMacKey& key) noexcept;

  /// Construct on explicit kernel backends (differential tests,
  /// per-backend benches).
  CwMac(const CwMacKey& key, const Aes128Ops& aes_ops,
        const Gf64Ops& gf_ops) noexcept;

  /// Tag over an arbitrary-length message bound to (addr, counter).
  /// Message length need not be a multiple of 8; it is zero-padded and the
  /// bit length is absorbed as a final hash coefficient.
  std::uint64_t compute(std::uint64_t addr, std::uint64_t counter,
                        std::span<const std::uint8_t> message) const noexcept;

  /// Nonce-free PRF-style tag, bound to a domain constant instead of an
  /// (addr, counter) pad:
  ///
  ///   tag = AES_k2( polyhash_h(message) ‖ domain ‖ PRF_DOMAIN )
  ///
  /// The universal-hash output is ENCRYPTED rather than XOR-masked, so
  /// two tags never leak a hash-key equation no matter how many
  /// messages share the domain — the standard hash-then-PRF
  /// composition (an ε-almost-universal hash fed into a PRP is a
  /// secure MAC with no counter discipline). Use this wherever tweak
  /// uniqueness cannot be structurally guaranteed (snapshot-chain
  /// seals, delta command MACs — chain roots repeat per alignment and
  /// epochs reset on restore); the data path keeps the cheaper XOR
  /// construction, whose (addr, counter) freshness the write-counter
  /// scheme enforces. `domain` must fit 56 bits; returns the full
  /// 64-bit tag (these never share an ECC lane with code bits).
  std::uint64_t compute_prf(std::uint64_t domain,
                            std::span<const std::uint8_t> message)
      const noexcept;

  /// Convenience for 64-byte data blocks.
  std::uint64_t compute_block(std::uint64_t addr, std::uint64_t counter,
                              const DataBlock& block) const noexcept {
    return compute(addr, counter, std::span<const std::uint8_t>(block));
  }

  /// Batch variant: tags[i] over blocks[i] bound to (addrs[i],
  /// counters[i]). Pads are produced through the 4-wide AES kernel.
  void compute_batch(std::span<const std::uint64_t> addrs,
                     std::span<const std::uint64_t> counters,
                     std::span<const DataBlock> blocks,
                     std::span<std::uint64_t> tags) const noexcept;

  /// compute_batch over packed 64-byte messages: `lines` holds
  /// addrs.size() consecutive blocks (addrs.size() * 64 bytes). Lets
  /// callers whose messages already sit contiguously (Bonsai levels,
  /// counter-storage images) batch without staging into DataBlock copies.
  void compute_batch(std::span<const std::uint64_t> addrs,
                     std::span<const std::uint64_t> counters,
                     std::span<const std::uint8_t> lines,
                     std::span<std::uint64_t> tags) const noexcept;

  /// True if tag matches the recomputed value. Constant-time in the tag
  /// contents (ct_equal_u64): a mismatch reveals nothing about *which*
  /// bits differ, closing the byte-at-a-time forgery oracle.
  [[nodiscard]] bool verify(std::uint64_t addr, std::uint64_t counter,
                            std::span<const std::uint8_t> message,
                            std::uint64_t tag) const noexcept {
    return ct_equal_u64(compute(addr, counter, message), tag & kMacMask);
  }

  /// The AES one-time pad for (addr, counter). The pad is independent of
  /// the message, so callers that check many candidate messages under one
  /// (addr, counter) — flip-and-check error correction above all — hoist
  /// this single AES call out of the loop.
  std::uint64_t pad_for(std::uint64_t addr,
                        std::uint64_t counter) const noexcept;

  /// Batch variant of pad_for: pads[i] for (addrs[i], counters[i]). Four
  /// pad tweaks go through one interleaved AES call.
  void pad_batch(std::span<const std::uint64_t> addrs,
                 std::span<const std::uint64_t> counters,
                 std::span<std::uint64_t> pads) const noexcept;

  /// Tag given a precomputed pad (see pad_for).
  std::uint64_t compute_with_pad(
      std::uint64_t pad, std::span<const std::uint8_t> message) const noexcept {
    return (polyhash(message) ^ pad) & kMacMask;
  }

  [[nodiscard]] bool verify_with_pad(std::uint64_t pad,
                                     std::span<const std::uint8_t> message,
                                     std::uint64_t tag) const noexcept {
    return ct_equal_u64(compute_with_pad(pad, message), tag & kMacMask);
  }

  /// Full (unmasked) 64-bit universal hash of a 64-byte block:
  ///   H = sum_j m_j * h^(8-j)  XOR  512            (j = 0..7)
  /// The hash is GF(2)-linear in the message, so flipping bit k of word j
  /// shifts H by exactly x^k * h^(8-j) — the identity incremental
  /// flip-and-check is built on. tag = (H ^ pad) & kMacMask.
  std::uint64_t block_polyhash(const DataBlock& block) const noexcept;

  /// h^(8-word): the hash coefficient of 64-bit word `word` (0..7) of a
  /// 64-byte block. Precomputed at construction.
  std::uint64_t word_coefficient(std::size_t word) const noexcept {
    return word_coeff_[word];
  }

  /// GF(2^64) kernel this instance bound to ("portable", "pclmul").
  const char* gf_backend_name() const noexcept;

  /// AES kernel the pad cipher bound to ("portable", "aes-ni").
  const char* aes_backend_name() const noexcept {
    return pad_.backend_name();
  }

 private:
  std::uint64_t polyhash(std::span<const std::uint8_t> message) const noexcept;

  /// x * h on whichever path this key bound to.
  std::uint64_t mul_h(std::uint64_t x) const noexcept;

  std::uint64_t h_;
  const Gf64Ops* gf_;
  /// Windowed multiply-by-h table — built only on the portable path
  /// (with PCLMULQDQ the direct product beats the 16KB table walk).
  std::unique_ptr<Gf64MulTable> mul_h_;
  /// word_coeff_[j] = h^(8-j), the coefficient of block word j.
  std::array<std::uint64_t, kBlockWords> word_coeff_;
  Aes128 pad_;
};

}  // namespace secmem
