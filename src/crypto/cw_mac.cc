#include "crypto/cw_mac.h"

#include "common/bitops.h"
#include "crypto/gf64.h"

namespace secmem {

CwMac::CwMac(const CwMacKey& key) noexcept
    : h_(key.hash_key | 1),  // avoid the degenerate h = 0 hash
      mul_h_(h_),
      pad_(key.pad_key) {}

std::uint64_t CwMac::polyhash(
    std::span<const std::uint8_t> message) const noexcept {
  // Horner evaluation: acc = ((m0*h + m1)*h + m2)*h ... + len, all in
  // GF(2^64). Absorbing the length defends against extension-style
  // ambiguity between messages that differ only in trailing zeros.
  std::uint64_t acc = 0;
  std::size_t i = 0;
  while (i + 8 <= message.size()) {
    acc = mul_h_.mul(acc) ^ load_le64(message.data() + i);
    i += 8;
  }
  if (i < message.size()) {
    std::uint64_t last = 0;
    for (std::size_t j = 0; i + j < message.size(); ++j)
      last |= std::uint64_t{message[i + j]} << (8 * j);
    acc = mul_h_.mul(acc) ^ last;
  }
  acc = mul_h_.mul(acc) ^ (static_cast<std::uint64_t>(message.size()) * 8);
  return acc;
}

std::uint64_t CwMac::pad_for(std::uint64_t addr,
                             std::uint64_t counter) const noexcept {
  // One-time pad: AES_k2 over a tweak in a domain separated from the
  // keystream tweaks by the final byte (0xA5 = "MAC domain").
  Aes128::Block tweak{};
  store_le64(tweak.data(), addr);
  for (int i = 0; i < 7; ++i)
    tweak[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
  tweak[15] = 0xA5;
  const Aes128::Block pad_block = pad_.encrypt(tweak);
  return load_le64(pad_block.data());
}

std::uint64_t CwMac::compute(
    std::uint64_t addr, std::uint64_t counter,
    std::span<const std::uint8_t> message) const noexcept {
  return compute_with_pad(pad_for(addr, counter), message);
}

}  // namespace secmem
