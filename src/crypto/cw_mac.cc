#include "crypto/cw_mac.h"

#include <algorithm>
#include <cassert>

#include "common/bitops.h"
#include "crypto/crypto_backend.h"
#include "crypto/gf64.h"

namespace secmem {

namespace {

// Pad tweak: [ addr(8B) | counter(7B) | 0xA5 ]. The final byte domain-
// separates MAC pads from the 0..3 chunk bytes of keystream tweaks.
void fill_pad_tweak(std::uint64_t addr, std::uint64_t counter,
                    std::uint8_t* tweak) noexcept {
  store_le64(tweak, addr);
  for (int i = 0; i < 7; ++i)
    tweak[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
  tweak[15] = 0xA5;
}

}  // namespace

CwMac::CwMac(const CwMacKey& key) noexcept
    : CwMac(key, aes128_ops(), gf64_ops()) {}

CwMac::CwMac(const CwMacKey& key, const Aes128Ops& aes_ops,
             const Gf64Ops& gf_ops) noexcept
    : h_(key.hash_key | 1),  // avoid the degenerate h = 0 hash
      gf_(&gf_ops),
      mul_h_(gf_ == &gf64_ops_portable()
                 ? std::make_unique<Gf64MulTable>(h_)
                 : nullptr),
      pad_(key.pad_key, aes_ops) {
  // word_coeff_[j] = h^(8-j): coefficient of word j in the block hash.
  std::uint64_t p = h_;
  for (std::size_t j = kBlockWords; j-- > 0;) {
    word_coeff_[j] = p;
    p = gf_->mul(p, h_);
  }
}

const char* CwMac::gf_backend_name() const noexcept { return gf_->name; }

std::uint64_t CwMac::mul_h(std::uint64_t x) const noexcept {
  return mul_h_ ? mul_h_->mul(x) : gf_->mul(x, h_);
}

std::uint64_t CwMac::polyhash(
    std::span<const std::uint8_t> message) const noexcept {
  // Horner evaluation: acc = ((m0*h + m1)*h + m2)*h ... + len, all in
  // GF(2^64). Absorbing the length defends against extension-style
  // ambiguity between messages that differ only in trailing zeros.
  std::uint64_t acc = 0;
  std::size_t i = 0;
  while (i + 8 <= message.size()) {
    acc = mul_h(acc) ^ load_le64(message.data() + i);
    i += 8;
  }
  if (i < message.size()) {
    std::uint64_t last = 0;
    for (std::size_t j = 0; i + j < message.size(); ++j)
      last |= std::uint64_t{message[i + j]} << (8 * j);
    acc = mul_h(acc) ^ last;
  }
  acc = mul_h(acc) ^ (static_cast<std::uint64_t>(message.size()) * 8);
  return acc;
}

std::uint64_t CwMac::block_polyhash(const DataBlock& block) const noexcept {
  return polyhash(std::span<const std::uint8_t>(block));
}

std::uint64_t CwMac::pad_for(std::uint64_t addr,
                             std::uint64_t counter) const noexcept {
  Aes128::Block tweak{};
  fill_pad_tweak(addr, counter, tweak.data());
  const Aes128::Block pad_block = pad_.encrypt(tweak);
  return load_le64(pad_block.data());
}

void CwMac::pad_batch(std::span<const std::uint64_t> addrs,
                      std::span<const std::uint64_t> counters,
                      std::span<std::uint64_t> pads) const noexcept {
  assert(addrs.size() == counters.size() && addrs.size() == pads.size());
  constexpr std::size_t kLane = Aes128::kWideParallelBlocks;
  std::size_t i = 0;
  std::array<std::uint8_t, kLane * Aes128::kBlockBytes> tweaks{};
  std::array<std::uint8_t, kLane * Aes128::kBlockBytes> enc;
  for (; i + kLane <= addrs.size(); i += kLane) {
    for (std::size_t l = 0; l < kLane; ++l)
      fill_pad_tweak(addrs[i + l], counters[i + l],
                     tweaks.data() + l * Aes128::kBlockBytes);
    pad_.encrypt_blocks8(tweaks, enc);
    for (std::size_t l = 0; l < kLane; ++l)
      pads[i + l] = load_le64(enc.data() + l * Aes128::kBlockBytes);
  }
  for (; i < addrs.size(); ++i) pads[i] = pad_for(addrs[i], counters[i]);
}

std::uint64_t CwMac::compute(
    std::uint64_t addr, std::uint64_t counter,
    std::span<const std::uint8_t> message) const noexcept {
  return compute_with_pad(pad_for(addr, counter), message);
}

std::uint64_t CwMac::compute_prf(
    std::uint64_t domain,
    std::span<const std::uint8_t> message) const noexcept {
  // PRF tweak: [ hash(8B) | domain(7B) | 0x5A ]. The final byte
  // domain-separates PRF inputs from pad tweaks (0xA5) and keystream
  // chunk bytes (0..3); the hash rides INSIDE the AES input, so the
  // tag is a PRP image of the message digest, not an XOR mask of it.
  assert(domain < (std::uint64_t{1} << 56));
  Aes128::Block in{};
  store_le64(in.data(), polyhash(message));
  for (int i = 0; i < 7; ++i)
    in[8 + i] = static_cast<std::uint8_t>(domain >> (8 * i));
  in[15] = 0x5A;
  return load_le64(pad_.encrypt(in).data());
}

void CwMac::compute_batch(std::span<const std::uint64_t> addrs,
                          std::span<const std::uint64_t> counters,
                          std::span<const DataBlock> blocks,
                          std::span<std::uint64_t> tags) const noexcept {
  assert(addrs.size() == counters.size() && addrs.size() == blocks.size() &&
         addrs.size() == tags.size());
  constexpr std::size_t kChunk = 32;
  std::array<std::uint64_t, kChunk> pads;
  for (std::size_t base = 0; base < addrs.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, addrs.size() - base);
    pad_batch(addrs.subspan(base, n), counters.subspan(base, n),
              std::span<std::uint64_t>(pads.data(), n));
    for (std::size_t i = 0; i < n; ++i)
      tags[base + i] = (block_polyhash(blocks[base + i]) ^ pads[i]) & kMacMask;
  }
}

void CwMac::compute_batch(std::span<const std::uint64_t> addrs,
                          std::span<const std::uint64_t> counters,
                          std::span<const std::uint8_t> lines,
                          std::span<std::uint64_t> tags) const noexcept {
  assert(addrs.size() == counters.size() && addrs.size() == tags.size() &&
         lines.size() == addrs.size() * kBlockBytes);
  constexpr std::size_t kChunk = 32;
  std::array<std::uint64_t, kChunk> pads;
  for (std::size_t base = 0; base < addrs.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, addrs.size() - base);
    pad_batch(addrs.subspan(base, n), counters.subspan(base, n),
              std::span<std::uint64_t>(pads.data(), n));
    for (std::size_t i = 0; i < n; ++i)
      tags[base + i] =
          (polyhash(lines.subspan((base + i) * kBlockBytes, kBlockBytes)) ^
           pads[i]) &
          kMacMask;
  }
}

}  // namespace secmem
