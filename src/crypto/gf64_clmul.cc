// PCLMULQDQ kernels for GF(2^64) (this translation unit alone is
// compiled with -mpclmul -msse4.1; see src/crypto/CMakeLists.txt).
//
// gf64_mul mirrors the portable reduction exactly: the 128-bit carry-less
// product is folded twice with the reduction constant 0x1b
// (x^64 ≡ x^4 + x^3 + x + 1), the second fold absorbing the ≤4-bit spill
// of the first. Three PCLMULQDQs replace a 64-iteration schoolbook loop.
#include "crypto/crypto_backend.h"
#include "crypto/cpu_features.h"

#if defined(SECMEM_HAVE_PCLMUL)
#include <smmintrin.h>
#include <wmmintrin.h>

namespace secmem {

namespace {

Clmul128 clmul_hw(std::uint64_t a, std::uint64_t b) {
  const __m128i p = _mm_clmulepi64_si128(
      _mm_cvtsi64_si128(static_cast<long long>(a)),
      _mm_cvtsi64_si128(static_cast<long long>(b)), 0x00);
  return {static_cast<std::uint64_t>(_mm_cvtsi128_si64(p)),
          static_cast<std::uint64_t>(_mm_extract_epi64(p, 1))};
}

std::uint64_t mul_hw(std::uint64_t a, std::uint64_t b) {
  const __m128i poly = _mm_cvtsi64_si128(0x1b);
  const __m128i p = _mm_clmulepi64_si128(
      _mm_cvtsi64_si128(static_cast<long long>(a)),
      _mm_cvtsi64_si128(static_cast<long long>(b)), 0x00);
  const __m128i fold1 = _mm_clmulepi64_si128(p, poly, 0x01);
  const __m128i fold2 = _mm_clmulepi64_si128(fold1, poly, 0x01);
  const __m128i r = _mm_xor_si128(p, _mm_xor_si128(fold1, fold2));
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(r));
}

constexpr Gf64Ops kClmulOps = {"pclmul", clmul_hw, mul_hw};

}  // namespace

const Gf64Ops* gf64_ops_accelerated() noexcept {
  const CpuFeatures& cpu = cpu_features();
  return cpu.pclmul && cpu.sse41 ? &kClmulOps : nullptr;
}

}  // namespace secmem

#else  // !SECMEM_HAVE_PCLMUL: built without PCLMULQDQ support

namespace secmem {

const Gf64Ops* gf64_ops_accelerated() noexcept { return nullptr; }

}  // namespace secmem

#endif
