#include "crypto/crypto_backend.h"

#include "crypto/cpu_features.h"

namespace secmem {

namespace {

template <typename Ops>
const Ops& select(const Ops& portable, const Ops* accelerated) noexcept {
  switch (crypto_backend_choice()) {
    case CryptoBackendChoice::kPortable:
      return portable;
    case CryptoBackendChoice::kAccelerated:
      return accelerated != nullptr ? *accelerated : portable;
    case CryptoBackendChoice::kAuto:
      break;
  }
  if (forced_portable_env() || accelerated == nullptr) return portable;
  return *accelerated;
}

}  // namespace

const Aes128Ops& aes128_ops() noexcept {
  return select(aes128_ops_portable(), aes128_ops_accelerated());
}

const Gf64Ops& gf64_ops() noexcept {
  return select(gf64_ops_portable(), gf64_ops_accelerated());
}

const char* crypto_backend_summary() noexcept {
  const bool aes = &aes128_ops() != &aes128_ops_portable();
  const bool clmul = &gf64_ops() != &gf64_ops_portable();
  if (aes && clmul) return "aes-ni+pclmul";
  if (aes) return "aes-ni";
  if (clmul) return "pclmul";
  return "portable";
}

}  // namespace secmem
