// Arithmetic in GF(2^64) for the Carter-Wegman universal hash.
//
// Elements are 64-bit polynomials over GF(2); multiplication is carry-less
// multiply reduced modulo the irreducible polynomial
//   x^64 + x^4 + x^3 + x + 1   (0x1B low word).
// The paper (§3.2, citing Gueron's SGX description) notes MAC computation
// is "essentially composed Galois field multiplications" — this is that
// field.
//
// clmul64/gf64_mul dispatch at runtime to a PCLMULQDQ kernel when the CPU
// has one (see crypto_backend.h); the *_portable variants are the scalar
// reference implementations, always available and bit-identical to the
// hardware path.
#pragma once

#include <cstdint>

namespace secmem {

/// Carry-less multiply of two 64-bit polynomials -> 128-bit product.
struct Clmul128 {
  std::uint64_t lo;
  std::uint64_t hi;
};
Clmul128 clmul64(std::uint64_t a, std::uint64_t b) noexcept;

/// Multiply in GF(2^64) modulo x^64 + x^4 + x^3 + x + 1.
std::uint64_t gf64_mul(std::uint64_t a, std::uint64_t b) noexcept;

/// Scalar reference implementations (the dispatch fallback).
Clmul128 clmul64_portable(std::uint64_t a, std::uint64_t b) noexcept;
std::uint64_t gf64_mul_portable(std::uint64_t a, std::uint64_t b) noexcept;

/// Multiply by x (one reduced shift) — O(1). Incremental flip-and-check
/// walks per-bit hash deltas with this: bit k+1's delta is x times
/// bit k's.
constexpr std::uint64_t gf64_mul_x(std::uint64_t a) noexcept {
  return (a << 1) ^ ((a >> 63) != 0 ? std::uint64_t{0x1b} : 0);
}

/// Exponentiation in GF(2^64) by square-and-multiply.
std::uint64_t gf64_pow(std::uint64_t base, std::uint64_t exp) noexcept;

/// Precomputed multiply-by-constant in GF(2^64), GHASH-style 8-bit
/// windowed tables. Multiplication is GF(2)-linear in x, so
///   x*h = XOR_i table[i][byte_i(x)]   with   table[i][b] = (b << 8i)*h.
/// One-time 16KB table per key; each product is 8 loads + 7 XORs —
/// mirrors how a single-cycle hardware GF multiplier would be keyed.
/// CwMac only builds one on the portable path; with PCLMULQDQ the direct
/// product is faster than the table walk.
class Gf64MulTable {
 public:
  explicit Gf64MulTable(std::uint64_t h) noexcept;

  /// x * h in GF(2^64).
  std::uint64_t mul(std::uint64_t x) const noexcept {
    std::uint64_t acc = 0;
    for (int i = 0; i < 8; ++i)
      acc ^= table_[i][(x >> (8 * i)) & 0xFF];
    return acc;
  }

 private:
  std::uint64_t table_[8][256];
};

}  // namespace secmem
