// Dispatch tables for the crypto hot kernels.
//
// Each primitive family exposes an ops struct: a portable instance
// (always present — the reference implementation and the fallback), an
// accelerated instance (AES-NI / PCLMULQDQ; null when the build or the
// host CPU lacks the instructions), and a selector that applies the
// policy from cpu_features.h. Objects (Aes128, CwMac, CtrKeystream)
// bind to an ops table at construction, so a policy change via
// set_crypto_backend_choice() affects objects constructed afterwards —
// which is exactly what differential tests and per-backend benches need.
//
// Round-key layout is part of the contract: expand_key produces the
// FIPS-197 byte-serialized schedule (11 x 16 bytes), identical across
// backends, so schedules and ops are freely mixable.
#pragma once

#include <cstdint>

#include "crypto/gf64.h"  // Clmul128

namespace secmem {

/// AES-128 kernel ops. `rk` is the 176-byte expanded schedule.
struct Aes128Ops {
  const char* name;
  /// FIPS-197 §5.2 key expansion: 16-byte key -> 176-byte schedule.
  void (*expand_key)(const std::uint8_t* key, std::uint8_t* rk);
  /// Encrypt one 16-byte block (in == out allowed).
  void (*encrypt1)(const std::uint8_t* rk, const std::uint8_t* in,
                   std::uint8_t* out);
  /// Encrypt four independent 16-byte blocks (64 bytes in/out). The
  /// AES-NI kernel interleaves the four AESENC chains to fill the
  /// pipeline; portable falls back to four sequential encryptions.
  void (*encrypt4)(const std::uint8_t* rk, const std::uint8_t* in,
                   std::uint8_t* out);
  /// Encrypt eight independent 16-byte blocks (128 bytes in/out) — two
  /// 64-byte CTR keystreams per call. AESENC retires ~2/cycle with ~4
  /// cycles latency, so four chains only half-fill the unit; the batch
  /// paths (crypt_batch, group re-encryption) use eight chains to
  /// saturate it. Portable falls back to eight sequential encryptions.
  void (*encrypt8)(const std::uint8_t* rk, const std::uint8_t* in,
                   std::uint8_t* out);
  /// Decrypt one 16-byte block (in == out allowed).
  void (*decrypt1)(const std::uint8_t* rk, const std::uint8_t* in,
                   std::uint8_t* out);
};

/// GF(2^64) kernel ops (reduction modulo x^64 + x^4 + x^3 + x + 1).
struct Gf64Ops {
  const char* name;
  Clmul128 (*clmul)(std::uint64_t a, std::uint64_t b);
  std::uint64_t (*mul)(std::uint64_t a, std::uint64_t b);
};

const Aes128Ops& aes128_ops_portable() noexcept;
/// Null when the build lacks AES-NI support or the CPU doesn't have it.
const Aes128Ops* aes128_ops_accelerated() noexcept;
/// The table the current policy selects (see cpu_features.h).
const Aes128Ops& aes128_ops() noexcept;

const Gf64Ops& gf64_ops_portable() noexcept;
const Gf64Ops* gf64_ops_accelerated() noexcept;
const Gf64Ops& gf64_ops() noexcept;

/// Human-readable summary of what the current policy resolves to, e.g.
/// "aes-ni+pclmul" or "portable" — for logs, benches, and docs.
const char* crypto_backend_summary() noexcept;

}  // namespace secmem
