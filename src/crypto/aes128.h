// AES-128 block cipher (FIPS-197) with runtime kernel dispatch.
//
// The memory-encryption engine uses AES-128 in counter mode to generate
// keystreams (paper §2.1) and as the pseudo-random pad for the
// Carter-Wegman MAC (paper §3.2). Each instance binds at construction to
// one of two kernel backends (crypto_backend.h): the portable
// byte-oriented reference implementation, or AES-NI when the CPU has it.
// Both produce the identical FIPS-197 byte-serialized key schedule and
// bit-identical ciphertexts; SECMEM_FORCE_PORTABLE=1 pins the fallback.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace secmem {

struct Aes128Ops;

/// AES-128: 128-bit key, 128-bit block, 10 rounds.
class Aes128 {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr int kRounds = 10;
  /// Width of the interleaved multi-block kernel (one CTR keystream).
  static constexpr std::size_t kParallelBlocks = 4;
  /// Width of the wide kernel (two CTR keystreams) used by the batch
  /// paths: eight in-flight AESENC chains saturate the AES unit where
  /// four only half-fill it (latency ~4 cycles, throughput ~2/cycle).
  static constexpr std::size_t kWideParallelBlocks = 8;

  using Block = std::array<std::uint8_t, kBlockBytes>;
  using Key = std::array<std::uint8_t, kKeyBytes>;

  /// Expands the key schedule on the backend the current policy selects
  /// (see cpu_features.h). The key is not retained beyond the schedule.
  explicit Aes128(const Key& key) noexcept;

  /// Expands the key schedule on an explicit backend (differential tests
  /// and per-backend benches).
  Aes128(const Key& key, const Aes128Ops& ops) noexcept;

  /// Encrypt one 16-byte block (out-of-place; in == out allowed).
  void encrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                     std::span<std::uint8_t, kBlockBytes> out) const noexcept;

  /// Decrypt one 16-byte block (out-of-place; in == out allowed).
  void decrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                     std::span<std::uint8_t, kBlockBytes> out) const noexcept;

  /// Encrypt four independent 16-byte blocks in one call (64 bytes
  /// in/out; in == out allowed). On AES-NI the four AESENC dependency
  /// chains interleave and fill the pipeline — this is the kernel behind
  /// every 64-byte CTR keystream.
  void encrypt_blocks4(
      std::span<const std::uint8_t, kParallelBlocks * kBlockBytes> in,
      std::span<std::uint8_t, kParallelBlocks * kBlockBytes> out)
      const noexcept;

  /// Encrypt eight independent 16-byte blocks in one call (128 bytes
  /// in/out; in == out allowed) — two CTR keystreams. The batch paths
  /// use this to keep eight AESENC chains in flight.
  void encrypt_blocks8(
      std::span<const std::uint8_t, kWideParallelBlocks * kBlockBytes> in,
      std::span<std::uint8_t, kWideParallelBlocks * kBlockBytes> out)
      const noexcept;

  /// Convenience: encrypt a Block value.
  Block encrypt(const Block& in) const noexcept;

  /// Convenience: decrypt a Block value.
  Block decrypt(const Block& in) const noexcept;

  /// Which kernel backend this instance bound to ("portable", "aes-ni").
  const char* backend_name() const noexcept;

 private:
  // 11 round keys of 16 bytes each (FIPS-197 byte layout, backend
  // independent).
  std::array<std::uint8_t, kBlockBytes*(kRounds + 1)> round_keys_{};
  const Aes128Ops* ops_;
};

}  // namespace secmem
