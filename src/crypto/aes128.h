// AES-128 block cipher (FIPS-197), portable software implementation.
//
// The memory-encryption engine uses AES-128 in counter mode to generate
// keystreams (paper §2.1) and as the pseudo-random pad for the
// Carter-Wegman MAC (paper §3.2). This is a straightforward table-free
// byte-oriented implementation: clarity over throughput — the simulator
// charges modeled hardware latencies, not host CPU time.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace secmem {

/// AES-128: 128-bit key, 128-bit block, 10 rounds.
class Aes128 {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr int kRounds = 10;

  using Block = std::array<std::uint8_t, kBlockBytes>;
  using Key = std::array<std::uint8_t, kKeyBytes>;

  /// Expands the key schedule. The key is not retained beyond the schedule.
  explicit Aes128(const Key& key) noexcept;

  /// Encrypt one 16-byte block (out-of-place; in == out allowed).
  void encrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                     std::span<std::uint8_t, kBlockBytes> out) const noexcept;

  /// Decrypt one 16-byte block (out-of-place; in == out allowed).
  void decrypt_block(std::span<const std::uint8_t, kBlockBytes> in,
                     std::span<std::uint8_t, kBlockBytes> out) const noexcept;

  /// Convenience: encrypt a Block value.
  Block encrypt(const Block& in) const noexcept;

  /// Convenience: decrypt a Block value.
  Block decrypt(const Block& in) const noexcept;

 private:
  // 11 round keys of 16 bytes each.
  std::array<std::uint8_t, kBlockBytes*(kRounds + 1)> round_keys_{};
};

}  // namespace secmem
