#include "crypto/ctr_keystream.h"

#include <cassert>
#include <cstring>

#include "common/bitops.h"

namespace secmem {

namespace {

// Tweak block: [ addr(8B) | counter(7B) | chunk(1B) ].
// The counter is at most 56 bits in every scheme we model (paper §2.1),
// so 7 bytes hold it exactly; the chunk index distinguishes the four
// 16-byte AES blocks inside one 64-byte keystream.
void fill_tweaks(std::uint64_t block_addr, std::uint64_t counter,
                 std::uint8_t* tweaks) noexcept {
  static_assert(kBlockBytes ==
                Aes128::kParallelBlocks * Aes128::kBlockBytes);
  store_le64(tweaks, block_addr);
  for (int i = 0; i < 7; ++i)
    tweaks[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
  tweaks[15] = 0;
  for (std::size_t chunk = 1; chunk < Aes128::kParallelBlocks; ++chunk) {
    std::uint8_t* t = tweaks + chunk * Aes128::kBlockBytes;
    std::memcpy(t, tweaks, Aes128::kBlockBytes);
    t[15] = static_cast<std::uint8_t>(chunk);
  }
}

}  // namespace

void CtrKeystream::generate(
    std::uint64_t block_addr, std::uint64_t counter,
    std::span<std::uint8_t, kBlockBytes> out) const noexcept {
  DataBlock tweaks;
  fill_tweaks(block_addr, counter, tweaks.data());
  aes_.encrypt_blocks4(tweaks, out);
}

void CtrKeystream::generate_batch(std::span<const std::uint64_t> addrs,
                                  std::span<const std::uint64_t> counters,
                                  std::span<DataBlock> out) const noexcept {
  assert(addrs.size() == counters.size() && addrs.size() == out.size());
  // Pairs of keystreams run through the 8-wide kernel (eight AESENC
  // chains in flight — see Aes128::kWideParallelBlocks); a single
  // straggler takes the 4-wide path. Bit-identical to per-block
  // generate(): the tweak schedule is unchanged, only the interleave is.
  std::size_t i = 0;
  std::array<std::uint8_t, 2 * kBlockBytes> tweaks;
  std::array<std::uint8_t, 2 * kBlockBytes> ks;
  for (; i + 2 <= addrs.size(); i += 2) {
    fill_tweaks(addrs[i], counters[i], tweaks.data());
    fill_tweaks(addrs[i + 1], counters[i + 1], tweaks.data() + kBlockBytes);
    aes_.encrypt_blocks8(tweaks, ks);
    std::memcpy(out[i].data(), ks.data(), kBlockBytes);
    std::memcpy(out[i + 1].data(), ks.data() + kBlockBytes, kBlockBytes);
  }
  for (; i < addrs.size(); ++i) generate(addrs[i], counters[i], out[i]);
}

void CtrKeystream::crypt(std::uint64_t block_addr, std::uint64_t counter,
                         std::span<std::uint8_t, kBlockBytes> data)
    const noexcept {
  DataBlock ks;
  generate(block_addr, counter, ks);
  for (std::size_t i = 0; i < kBlockBytes; ++i) data[i] ^= ks[i];
}

void CtrKeystream::crypt_batch(std::span<const std::uint64_t> addrs,
                               std::span<const std::uint64_t> counters,
                               std::span<DataBlock> blocks) const noexcept {
  assert(addrs.size() == counters.size() && addrs.size() == blocks.size());
  std::size_t i = 0;
  std::array<std::uint8_t, 2 * kBlockBytes> tweaks;
  std::array<std::uint8_t, 2 * kBlockBytes> ks;
  for (; i + 2 <= addrs.size(); i += 2) {
    fill_tweaks(addrs[i], counters[i], tweaks.data());
    fill_tweaks(addrs[i + 1], counters[i + 1], tweaks.data() + kBlockBytes);
    aes_.encrypt_blocks8(tweaks, ks);
    for (std::size_t b = 0; b < kBlockBytes; ++b) blocks[i][b] ^= ks[b];
    for (std::size_t b = 0; b < kBlockBytes; ++b)
      blocks[i + 1][b] ^= ks[kBlockBytes + b];
  }
  for (; i < addrs.size(); ++i) crypt(addrs[i], counters[i], blocks[i]);
}

}  // namespace secmem
