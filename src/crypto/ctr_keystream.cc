#include "crypto/ctr_keystream.h"

#include "common/bitops.h"

namespace secmem {

void CtrKeystream::generate(
    std::uint64_t block_addr, std::uint64_t counter,
    std::span<std::uint8_t, kBlockBytes> out) const noexcept {
  // Tweak block: [ addr(8B) | counter(7B) | chunk(1B) ].
  // The counter is at most 56 bits in every scheme we model (paper §2.1),
  // so 7 bytes hold it exactly; the chunk index distinguishes the four
  // 16-byte AES blocks inside one 64-byte keystream.
  Aes128::Block tweak{};
  store_le64(tweak.data(), block_addr);
  for (int i = 0; i < 7; ++i)
    tweak[8 + i] = static_cast<std::uint8_t>(counter >> (8 * i));
  for (std::size_t chunk = 0; chunk < kBlockBytes / Aes128::kBlockBytes;
       ++chunk) {
    tweak[15] = static_cast<std::uint8_t>(chunk);
    aes_.encrypt_block(
        tweak, std::span<std::uint8_t, Aes128::kBlockBytes>(
                   out.data() + chunk * Aes128::kBlockBytes,
                   Aes128::kBlockBytes));
  }
}

void CtrKeystream::crypt(std::uint64_t block_addr, std::uint64_t counter,
                         std::span<std::uint8_t, kBlockBytes> data)
    const noexcept {
  DataBlock ks;
  generate(block_addr, counter, ks);
  for (std::size_t i = 0; i < kBlockBytes; ++i) data[i] ^= ks[i];
}

}  // namespace secmem
