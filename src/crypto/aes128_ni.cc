// AES-NI kernels (this translation unit alone is compiled with
// -maes -msse4.1; see src/crypto/CMakeLists.txt — the rest of the tree
// stays at the baseline ISA, and runtime cpuid gates every use).
//
// The key schedule uses AESKEYGENASSIST and produces the exact FIPS-197
// byte layout of the portable expansion, so schedules are interchangeable
// between backends. encrypt4 interleaves four independent AESENC chains:
// AESENC has multi-cycle latency but single-cycle throughput, so four
// in-flight blocks — one 64-byte CTR keystream — keep the unit busy.
#include "crypto/crypto_backend.h"
#include "crypto/cpu_features.h"

#if defined(SECMEM_HAVE_AESNI)
#include <wmmintrin.h>

namespace secmem {

namespace {

// One round of FIPS-197 key expansion. AESKEYGENASSIST computes
// SubWord(RotWord(w3)) ^ rcon in lane 3; the xor-cascade folds the
// previous round key's words in.
template <int kRcon>
__m128i expand_round(__m128i key) noexcept {
  __m128i assist = _mm_aeskeygenassist_si128(key, kRcon);
  assist = _mm_shuffle_epi32(assist, _MM_SHUFFLE(3, 3, 3, 3));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  key = _mm_xor_si128(key, _mm_slli_si128(key, 4));
  return _mm_xor_si128(key, assist);
}

void ni_expand_key(const std::uint8_t* key, std::uint8_t* rk) {
  __m128i k = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  auto store = [&rk](int round, __m128i v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(rk + 16 * round), v);
  };
  store(0, k);
  store(1, k = expand_round<0x01>(k));
  store(2, k = expand_round<0x02>(k));
  store(3, k = expand_round<0x04>(k));
  store(4, k = expand_round<0x08>(k));
  store(5, k = expand_round<0x10>(k));
  store(6, k = expand_round<0x20>(k));
  store(7, k = expand_round<0x40>(k));
  store(8, k = expand_round<0x80>(k));
  store(9, k = expand_round<0x1b>(k));
  store(10, k = expand_round<0x36>(k));
}

inline __m128i round_key(const std::uint8_t* rk, int round) noexcept {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk + 16 * round));
}

void ni_encrypt1(const std::uint8_t* rk, const std::uint8_t* in,
                 std::uint8_t* out) {
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, round_key(rk, 0));
  for (int round = 1; round < 10; ++round)
    s = _mm_aesenc_si128(s, round_key(rk, round));
  s = _mm_aesenclast_si128(s, round_key(rk, 10));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

void ni_encrypt4(const std::uint8_t* rk, const std::uint8_t* in,
                 std::uint8_t* out) {
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i s0 = _mm_loadu_si128(src + 0);
  __m128i s1 = _mm_loadu_si128(src + 1);
  __m128i s2 = _mm_loadu_si128(src + 2);
  __m128i s3 = _mm_loadu_si128(src + 3);
  __m128i k = round_key(rk, 0);
  s0 = _mm_xor_si128(s0, k);
  s1 = _mm_xor_si128(s1, k);
  s2 = _mm_xor_si128(s2, k);
  s3 = _mm_xor_si128(s3, k);
  for (int round = 1; round < 10; ++round) {
    k = round_key(rk, round);
    s0 = _mm_aesenc_si128(s0, k);
    s1 = _mm_aesenc_si128(s1, k);
    s2 = _mm_aesenc_si128(s2, k);
    s3 = _mm_aesenc_si128(s3, k);
  }
  k = round_key(rk, 10);
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(s0, k));
  _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(s1, k));
  _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(s2, k));
  _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(s3, k));
}

void ni_encrypt8(const std::uint8_t* rk, const std::uint8_t* in,
                 std::uint8_t* out) {
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i s0 = _mm_loadu_si128(src + 0);
  __m128i s1 = _mm_loadu_si128(src + 1);
  __m128i s2 = _mm_loadu_si128(src + 2);
  __m128i s3 = _mm_loadu_si128(src + 3);
  __m128i s4 = _mm_loadu_si128(src + 4);
  __m128i s5 = _mm_loadu_si128(src + 5);
  __m128i s6 = _mm_loadu_si128(src + 6);
  __m128i s7 = _mm_loadu_si128(src + 7);
  __m128i k = round_key(rk, 0);
  s0 = _mm_xor_si128(s0, k);
  s1 = _mm_xor_si128(s1, k);
  s2 = _mm_xor_si128(s2, k);
  s3 = _mm_xor_si128(s3, k);
  s4 = _mm_xor_si128(s4, k);
  s5 = _mm_xor_si128(s5, k);
  s6 = _mm_xor_si128(s6, k);
  s7 = _mm_xor_si128(s7, k);
  for (int round = 1; round < 10; ++round) {
    k = round_key(rk, round);
    s0 = _mm_aesenc_si128(s0, k);
    s1 = _mm_aesenc_si128(s1, k);
    s2 = _mm_aesenc_si128(s2, k);
    s3 = _mm_aesenc_si128(s3, k);
    s4 = _mm_aesenc_si128(s4, k);
    s5 = _mm_aesenc_si128(s5, k);
    s6 = _mm_aesenc_si128(s6, k);
    s7 = _mm_aesenc_si128(s7, k);
  }
  k = round_key(rk, 10);
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(s0, k));
  _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(s1, k));
  _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(s2, k));
  _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(s3, k));
  _mm_storeu_si128(dst + 4, _mm_aesenclast_si128(s4, k));
  _mm_storeu_si128(dst + 5, _mm_aesenclast_si128(s5, k));
  _mm_storeu_si128(dst + 6, _mm_aesenclast_si128(s6, k));
  _mm_storeu_si128(dst + 7, _mm_aesenclast_si128(s7, k));
}

// Equivalent inverse cipher: AESDEC expects InvMixColumns-transformed
// round keys. Decryption is off the hot path (CTR mode and the MAC pad
// only ever encrypt), so the AESIMC transforms run per call instead of
// being cached in a second schedule.
void ni_decrypt1(const std::uint8_t* rk, const std::uint8_t* in,
                 std::uint8_t* out) {
  __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in));
  s = _mm_xor_si128(s, round_key(rk, 10));
  for (int round = 9; round >= 1; --round)
    s = _mm_aesdec_si128(s, _mm_aesimc_si128(round_key(rk, round)));
  s = _mm_aesdeclast_si128(s, round_key(rk, 0));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), s);
}

constexpr Aes128Ops kNiOps = {
    "aes-ni",    ni_expand_key, ni_encrypt1,
    ni_encrypt4, ni_encrypt8,   ni_decrypt1,
};

}  // namespace

const Aes128Ops* aes128_ops_accelerated() noexcept {
  const CpuFeatures& cpu = cpu_features();
  return cpu.aesni && cpu.sse41 ? &kNiOps : nullptr;
}

}  // namespace secmem

#else  // !SECMEM_HAVE_AESNI: built without AES-NI support

namespace secmem {

const Aes128Ops* aes128_ops_accelerated() noexcept { return nullptr; }

}  // namespace secmem

#endif
