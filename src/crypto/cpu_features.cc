#include "crypto/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace secmem {

namespace {

CpuFeatures probe() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.pclmul = (ecx & bit_PCLMUL) != 0;
    f.aesni = (ecx & bit_AES) != 0;
    f.sse41 = (ecx & bit_SSE4_1) != 0;
  }
#endif
  return f;
}

bool probe_forced_portable() noexcept {
  const char* v = std::getenv("SECMEM_FORCE_PORTABLE");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

std::atomic<CryptoBackendChoice> g_choice{CryptoBackendChoice::kAuto};

}  // namespace

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = probe();
  return features;
}

bool forced_portable_env() noexcept {
  static const bool forced = probe_forced_portable();
  return forced;
}

void set_crypto_backend_choice(CryptoBackendChoice choice) noexcept {
  g_choice.store(choice, std::memory_order_relaxed);
}

CryptoBackendChoice crypto_backend_choice() noexcept {
  return g_choice.load(std::memory_order_relaxed);
}

}  // namespace secmem
